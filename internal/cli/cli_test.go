package cli

import (
	"flag"
	"reflect"
	"strings"
	"testing"
	"time"

	"phirel/internal/bench/all"
	"phirel/internal/distrib"
	"phirel/internal/fault"
	"phirel/internal/state"
)

// parse registers the shared flags on a fresh FlagSet and parses args —
// exactly what both commands do at startup.
func parse(t *testing.T, args ...string) *SweepFlags {
	t.Helper()
	var f SweepFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestDefaultsBuildTheCanonicalSweep(t *testing.T) {
	f := parse(t)
	s, err := f.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Benchmarks, all.Suite) {
		t.Fatalf("default benchmarks %v, want the full suite", s.Benchmarks)
	}
	if s.N != 600 || s.Seed != 1701 || s.BenchSeed != 1 || s.Workers != 8 {
		t.Fatalf("default scalars off: %+v", s)
	}
	if s.Models != nil {
		t.Fatalf("empty -models must stay nil (normalized() fills all four): %v", s.Models)
	}
	if !reflect.DeepEqual(s.Policies, []state.Policy{state.ByFrameThenVariable}) {
		t.Fatalf("default policies %v", s.Policies)
	}
	if s.BeamRuns != 0 || s.BeamBenchmarks != nil {
		t.Fatalf("beam cells enabled by default: %+v", s)
	}
}

func TestGridFlagsWireThrough(t *testing.T) {
	f := parse(t, "-bench", "DGEMM", "-n", "40", "-models", "Single,Zero",
		"-beam-runs", "200", "-beam-ecc-ablation", "-beam-devices", "KNC3120A,KNC5110P")
	s, err := f.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Benchmarks, []string{"DGEMM"}) {
		t.Fatalf("benchmarks %v", s.Benchmarks)
	}
	if !reflect.DeepEqual(s.Models, []fault.Model{fault.Single, fault.Zero}) {
		t.Fatalf("models %v", s.Models)
	}
	// Beam cells enabled: the paper's beam suite is wired in regardless of
	// -bench, exactly as phi-bench -sweep has always done.
	if !reflect.DeepEqual(s.BeamBenchmarks, all.BeamSuite) {
		t.Fatalf("beam benchmarks %v, want the beam suite", s.BeamBenchmarks)
	}
	if !s.BeamECCAblation || len(s.BeamDevices) != 2 {
		t.Fatalf("beam arm flags lost: %+v", s)
	}
}

func TestLoadSweepSpecAndWorkersOverride(t *testing.T) {
	var f SweepFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs, "")
	if err := fs.Parse([]string{"-workers", "16"}); err != nil {
		t.Fatal(err)
	}
	if !WorkersSet(fs) {
		t.Fatal("explicit -workers not detected")
	}
	spec := `{"benchmarks":["DGEMM"],"n":5,"seed":7,"benchSeed":1,"workers":2}`
	s, err := f.LoadSweep("-", strings.NewReader(spec), WorkersSet(fs))
	if err != nil {
		t.Fatal(err)
	}
	// The spec is the whole truth except the per-machine pool size.
	if s.N != 5 || s.Seed != 7 || !reflect.DeepEqual(s.Benchmarks, []string{"DGEMM"}) {
		t.Fatalf("spec fields lost: %+v", s)
	}
	if s.Workers != 16 {
		t.Fatalf("explicit -workers not honoured over the spec: %d", s.Workers)
	}
	// Without the explicit flag, the spec's pool size stands.
	s, err = f.LoadSweep("-", strings.NewReader(spec), false)
	if err != nil || s.Workers != 2 {
		t.Fatalf("spec workers overridden without an explicit flag: %d, %v", s.Workers, err)
	}
	// No spec: the grid flags build the sweep.
	s, err = f.LoadSweep("", nil, true)
	if err != nil || s.Workers != 16 || !reflect.DeepEqual(s.Benchmarks, all.Suite) {
		t.Fatalf("flag-built sweep off: %+v, %v", s, err)
	}
}

func TestK8sFlagsLauncherWiring(t *testing.T) {
	parse := func(args ...string) *K8sFlags {
		t.Helper()
		var f K8sFlags
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f.Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return &f
	}
	// -k8s off: no launcher, no error — the caller falls through to the
	// exec/ssh transports.
	l, err := parse().Launcher("run")
	if l != nil || err != nil {
		t.Fatalf("disabled k8s produced %v, %v", l, err)
	}
	// -k8s without an image is an incoherent flag set, caught before any
	// cluster traffic.
	if _, err := parse("-k8s").Launcher("run"); err == nil || !strings.Contains(err.Error(), "-k8s-image") {
		t.Fatalf("imageless -k8s: %v, want a -k8s-image error", err)
	}
	l, err = parse("-k8s", "-k8s-image", "ghcr.io/x/phirel:1", "-k8s-namespace", "phirel",
		"-k8s-job-ttl", "30m", "-k8s-bin", "/opt/phi-bench", "-kubectl", "kubectl --context lab").Launcher("fleet-7")
	if err != nil {
		t.Fatal(err)
	}
	k8s, ok := l.(distrib.K8sLauncher)
	if !ok {
		t.Fatalf("launcher is %T, want distrib.K8sLauncher", l)
	}
	want := distrib.K8sLauncher{
		Namespace: "phirel",
		Image:     "ghcr.io/x/phirel:1",
		Bin:       "/opt/phi-bench",
		JobTTL:    30 * time.Minute,
		RunName:   "fleet-7",
		Kubectl:   []string{"kubectl", "--context", "lab"},
	}
	if !reflect.DeepEqual(k8s, want) {
		t.Fatalf("launcher wired as %+v, want %+v", k8s, want)
	}
}

func TestBadGridFlagsError(t *testing.T) {
	if _, err := parse(t, "-models", "NotAModel").Sweep(); err == nil {
		t.Fatal("accepted an unknown fault model")
	}
	if _, err := parse(t, "-policies", "by-vibes").Sweep(); err == nil {
		t.Fatal("accepted an unknown policy")
	}
}
