package cli

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"phirel/internal/core"
	"phirel/internal/monitor"
	"phirel/internal/trace"
)

func TestMonitorFlagsOffByDefault(t *testing.T) {
	var f MonitorFlags
	sink, err := f.Open()
	if err != nil || sink != nil {
		t.Fatalf("Open without -monitor-jsonl: (%v, %v), want (nil, nil)", sink, err)
	}
}

func TestMonitorFlagsUnknownDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mon.jsonl")
	f := MonitorFlags{Out: path, Device: "KNC9999X"}
	if _, err := f.Open(); err == nil {
		t.Fatal("unknown monitor device accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed Open left the output file behind")
	}
}

// TestMonitorSinkStream drives the full -monitor-jsonl lifecycle: rolling
// lines at the -monitor-every cadence, a Mark at a campaign boundary, and
// the final line Close appends — which must equal the monitor's own final
// snapshot exactly.
func TestMonitorSinkStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mon.jsonl")
	f := MonitorFlags{Out: path, Every: 2}
	sink, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out := "Masked"
		if i%2 == 0 {
			out = "SDC"
		}
		sink.Monitor.ObserveInjection(core.InjectionRecord{
			Benchmark: "DGEMM", Model: "Single", Region: "matrix", Outcome: out,
		})
	}
	sink.Mark()
	want := sink.Monitor.Snapshot()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	snaps, err := trace.Read[monitor.Snapshot](file)
	if err != nil {
		t.Fatal(err)
	}
	// 5 records at every-2 → 2 rolling lines, plus the Mark, plus Close.
	if len(snaps) != 4 || sink.Lines() != 4 {
		t.Fatalf("stream has %d lines (sink counted %d), want 4", len(snaps), sink.Lines())
	}
	if got := []int{snaps[0].Trials, snaps[1].Trials}; got[0] != 2 || got[1] != 4 {
		t.Fatalf("rolling snapshot trial counts %v, want [2 4]", got)
	}
	final := snaps[len(snaps)-1]
	if !reflect.DeepEqual(final, want) {
		t.Fatalf("final line %+v differs from the monitor's final snapshot %+v", final, want)
	}
	if final.Schema != monitor.SchemaV1 || final.Trials != 5 {
		t.Fatalf("final snapshot schema %q trials %d", final.Schema, final.Trials)
	}
}
