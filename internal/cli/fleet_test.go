package cli

import (
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"phirel/internal/distrib"
)

func parseFleet(t *testing.T, args ...string) (*FleetFlags, *WorkerFlags) {
	t.Helper()
	var f FleetFlags
	var w WorkerFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	w.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f, &w
}

// TestFleetFlagsDefaultsMatchScheduler: the flag defaults ARE
// distrib.Defaults — phi-fleet, phi-serve, and the scheduler cannot
// disagree on the baseline fan-out config.
func TestFleetFlagsDefaultsMatchScheduler(t *testing.T) {
	f, _ := parseFleet(t)
	d := distrib.Defaults()
	if f.Shards != d.Shards || f.Timeout != d.Timeout || f.Retries != d.Retries ||
		f.Backoff != d.Backoff || f.MaxConcurrent != d.MaxConcurrent {
		t.Fatalf("flag defaults %+v diverge from distrib.Defaults %+v", f, d)
	}
}

func TestFleetFlagsOptionsAssembly(t *testing.T) {
	f, w := parseFleet(t, "-shards", "5", "-timeout", "90s", "-retries", "2",
		"-backoff", "3s", "-max-concurrent", "4", "-worker-cmd", "bin/phi-bench -quiet")
	opts, err := f.Options(w.Launcher(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Shards != 5 || opts.Retries != 2 || opts.MaxConcurrent != 4 {
		t.Fatalf("options wired as %+v", opts)
	}
	exec, ok := opts.Launcher.(distrib.ExecLauncher)
	if !ok || !reflect.DeepEqual(exec.Command, []string{"bin/phi-bench", "-quiet"}) {
		t.Fatalf("launcher %+v", opts.Launcher)
	}

	// Validation runs inside assembly: an incoherent flag set never
	// reaches a scheduler.
	bad, _ := parseFleet(t, "-shards", "0")
	if _, err := bad.Options(w.Launcher(), t.TempDir()); err == nil {
		t.Fatal("shards=0 assembled into Options without error")
	}
	if _, err := f.Options(nil, t.TempDir()); err == nil {
		t.Fatal("nil launcher assembled into Options without error")
	}
}

func TestWorkerFlagsSSHWinsOverExec(t *testing.T) {
	_, w := parseFleet(t, "-ssh", "a,b", "-ssh-bin", "/opt/phi-bench", "-worker-cmd", "ignored")
	ssh, ok := w.Launcher().(distrib.SSHLauncher)
	if !ok {
		t.Fatalf("launcher %T, want SSHLauncher", w.Launcher())
	}
	if !reflect.DeepEqual(ssh.Hosts, []string{"a", "b"}) || ssh.Bin != "/opt/phi-bench" {
		t.Fatalf("ssh launcher %+v", ssh)
	}
}

// TestOpenInput: the "-" convention reads stdin under the name "stdin"
// with a no-op Close; files open (and fail to open) under their own name.
func TestOpenInput(t *testing.T) {
	r, name, err := OpenInput("-", strings.NewReader("piped"))
	if err != nil || name != "stdin" {
		t.Fatalf("stdin form: %q, %v", name, err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "piped" {
		t.Fatalf("stdin content %q", data)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("stdin Close: %v", err)
	}

	_, name, err = OpenInput("/nonexistent/input.jsonl", nil)
	if err == nil {
		t.Fatal("missing file opened")
	}
	if name != "/nonexistent/input.jsonl" {
		t.Fatalf("error name %q, want the path", name)
	}
}
