package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags is the pprof flag surface the command-line tools share:
// -cpuprofile samples the whole process lifetime, -memprofile snapshots
// the heap at exit. Both write the binary pprof format that
// `go tool pprof` reads, so a slow sweep can be profiled in production
// exactly as `go test -cpuprofile` profiles the benchmarks.
type ProfileFlags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// Register installs the profiling flags on fs.
func (f *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap allocation profile to this file at exit")
}

// Start begins CPU profiling when -cpuprofile was given. Pair with Stop
// before exit; Stop also writes the -memprofile snapshot.
func (f *ProfileFlags) Start() error {
	if f.CPU == "" {
		return nil
	}
	file, err := os.Create(f.CPU)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop flushes the CPU profile and writes the heap profile.
func (f *ProfileFlags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		f.cpuFile = nil
	}
	if f.Mem == "" {
		return nil
	}
	file, err := os.Create(f.Mem)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC() // up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	return file.Close()
}
