package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"phirel/internal/distrib"
)

// FleetFlags is the supervision flag surface shared by cmd/phi-fleet and
// cmd/phi-serve: the per-attempt timeout, retry budget, backoff and
// concurrency cap of a fan-out. Defaults come from distrib.Defaults and
// assembly goes through distrib.Options.Validate, so the CLI surfaces and
// the scheduler cannot drift on what a legal fan-out config is.
type FleetFlags struct {
	Shards          int
	Timeout         time.Duration
	Retries         int
	Backoff         time.Duration
	MaxConcurrent   int
	CheckpointEvery int
	StealInterval   time.Duration
	StealFactor     float64
	StealWays       int
}

// Register installs the supervision flags on fs with distrib.Defaults as
// the flag defaults.
func (f *FleetFlags) Register(fs *flag.FlagSet) {
	d := distrib.Defaults()
	fs.IntVar(&f.Shards, "shards", d.Shards, "fan-out width K: how many shard workers per sweep")
	fs.DurationVar(&f.Timeout, "timeout", d.Timeout, "per-attempt shard timeout (0 = none)")
	fs.IntVar(&f.Retries, "retries", d.Retries, "relaunches per crashed/timed-out/corrupt-output shard beyond its first attempt")
	fs.DurationVar(&f.Backoff, "backoff", d.Backoff, "delay before a shard's first retry (doubles per retry)")
	fs.IntVar(&f.MaxConcurrent, "max-concurrent", d.MaxConcurrent, "max shards in flight at once (0 = no cap; one shared budget across jobs)")
	fs.IntVar(&f.CheckpointEvery, "checkpoint-every", d.CheckpointEvery, "shard checkpoint cadence in trials: relaunched shards resume instead of recomputing (0 = off)")
	fs.DurationVar(&f.StealInterval, "steal-interval", d.StealInterval, "straggler watchdog period: lagging shards are cancelled at a checkpoint and re-split (0 = off; needs -checkpoint-every)")
	fs.Float64Var(&f.StealFactor, "steal-factor", d.StealFactor, "lag threshold: a shard is a straggler below this fraction of the fleet's median progress rate")
	fs.IntVar(&f.StealWays, "steal-ways", d.StealWays, "how many sub-shards a stolen straggler's remainder is re-split into")
}

// Options assembles the validated distrib.Options the flags describe,
// completed with the launcher and working directory the caller resolved.
func (f *FleetFlags) Options(launcher distrib.Launcher, dir string) (distrib.Options, error) {
	opts := distrib.Options{
		Shards:          f.Shards,
		Launcher:        launcher,
		Dir:             dir,
		Timeout:         f.Timeout,
		Retries:         f.Retries,
		Backoff:         f.Backoff,
		MaxConcurrent:   f.MaxConcurrent,
		CheckpointEvery: f.CheckpointEvery,
		StealInterval:   f.StealInterval,
		StealFactor:     f.StealFactor,
		StealWays:       f.StealWays,
	}
	if err := opts.Validate(); err != nil {
		return distrib.Options{}, err
	}
	return opts, nil
}

// WorkerFlags is the worker-transport flag surface shared by cmd/phi-fleet
// and cmd/phi-serve: how shard workers are launched when the Kubernetes
// transport is not in play.
type WorkerFlags struct {
	WorkerCmd string
	SSHHosts  string
	SSHBin    string
}

// Register installs the worker-transport flags on fs.
func (f *WorkerFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.WorkerCmd, "worker-cmd", "", "local worker command, space-separated (default: phi-bench next to this executable, else from PATH)")
	fs.StringVar(&f.SSHHosts, "ssh", "", "comma-separated ssh hosts; shards round-robin over them instead of running locally")
	fs.StringVar(&f.SSHBin, "ssh-bin", "phi-bench", "phi-bench executable on the remote hosts")
}

// Launcher picks the worker transport the flags describe: ssh hosts when
// given, else a local subprocess of the explicit -worker-cmd, else a
// phi-bench discovered next to the calling executable or on PATH.
func (f *WorkerFlags) Launcher() distrib.Launcher {
	if f.SSHHosts != "" {
		return distrib.SSHLauncher{Hosts: strings.Split(f.SSHHosts, ","), Bin: f.SSHBin}
	}
	if f.WorkerCmd != "" {
		return distrib.ExecLauncher{Command: strings.Fields(f.WorkerCmd)}
	}
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "phi-bench")
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return distrib.ExecLauncher{Command: []string{sibling}}
		}
	}
	return distrib.ExecLauncher{Command: []string{"phi-bench"}}
}

// OpenInput resolves the "-" input convention every phirel tool follows
// (phi-bench -spec -, phi-fleet -spec -, phi-report -in -): "-" reads
// stdin, anything else opens the named file. The returned name labels the
// source in error messages; Close on the stdin form is a no-op so callers
// can defer it unconditionally.
func OpenInput(path string, stdin io.Reader) (r io.ReadCloser, name string, err error) {
	if path == "-" {
		return io.NopCloser(stdin), "stdin", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, path, err
	}
	return f, path, nil
}
