package cli

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"phirel/internal/monitor"
	"phirel/internal/phi"
	"phirel/internal/trace"
)

// MonitorFlags is the resident-monitor flag surface cmd/phi-bench and
// cmd/phi-beam share: where to stream rolling FIT/MTBF snapshots, under
// which device model and operating temperature, and how often. Like
// SweepFlags, it lives here so the two campaign CLIs expose one flag
// vocabulary with one tested wiring into internal/monitor.
type MonitorFlags struct {
	Out    string
	Device string
	TempK  float64
	Every  int
}

// Register installs the monitor flags on fs. prefix is prepended to the
// help text, mirroring SweepFlags.Register.
func (f *MonitorFlags) Register(fs *flag.FlagSet, prefix string) {
	fs.StringVar(&f.Out, "monitor-jsonl", "", prefix+"stream rolling FIT/MTBF snapshots to this JSONL file (one internal/monitor snapshot per line, final line = exact post-hoc estimate)")
	fs.StringVar(&f.Device, "monitor-device", phi.DefaultDevice, prefix+"device model backing the monitor's raw fault rates")
	fs.Float64Var(&f.TempK, "monitor-temp", 0, prefix+"operating junction temperature in kelvin for the Arrhenius acceleration factor (0 = device reference temperature)")
	fs.IntVar(&f.Every, "monitor-every", 1000, prefix+"records between rolling snapshot lines (0 = final snapshot only)")
}

// MonitorSink is an open -monitor-jsonl stream: a Monitor whose periodic
// snapshots append to the JSONL file, plus the final-snapshot/flush
// lifecycle. Snapshot writes are serialised internally, so the Monitor's
// observers can feed it from concurrent campaign workers.
type MonitorSink struct {
	// Monitor receives the campaign records (wire its Observe methods or
	// monitor.Attach into the campaign's record stream).
	Monitor *monitor.Monitor

	mu    sync.Mutex
	file  *os.File
	w     *trace.Writer
	lines int
	werr  error
}

// Open builds the sink the flags describe, or (nil, nil) when
// -monitor-jsonl was not passed — the caller falls through to running
// unmonitored.
func (f *MonitorFlags) Open() (*MonitorSink, error) {
	if f.Out == "" {
		return nil, nil
	}
	file, err := os.Create(f.Out)
	if err != nil {
		return nil, err
	}
	s := &MonitorSink{file: file, w: trace.NewWriter(file)}
	m, err := monitor.New(monitor.Config{
		Device:        f.Device,
		TempK:         f.TempK,
		SnapshotEvery: f.Every,
		OnSnapshot:    s.write,
	})
	if err != nil {
		file.Close()
		os.Remove(f.Out)
		return nil, err
	}
	s.Monitor = m
	return s, nil
}

func (s *MonitorSink) write(snap monitor.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Write(snap); err != nil && s.werr == nil {
		s.werr = err
	}
	s.lines++
}

// Mark appends a snapshot of the monitor's current state, regardless of
// the -monitor-every cadence — the campaign CLIs call it at natural
// boundaries, e.g. after each benchmark of a suite.
func (s *MonitorSink) Mark() { s.write(s.Monitor.Snapshot()) }

// Lines reports how many snapshot lines have been written.
func (s *MonitorSink) Lines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lines
}

// Close appends the final snapshot — on a completed fixed-seed campaign,
// the exact post-hoc analysis fit — then flushes and closes the file. Call
// it after the campaign has fully drained into the Monitor. The first
// write error anywhere in the stream's lifetime is returned.
func (s *MonitorSink) Close() error {
	s.write(s.Monitor.Snapshot())
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.werr == nil {
		s.werr = err
	}
	if err := s.file.Close(); err != nil && s.werr == nil {
		s.werr = err
	}
	if s.werr != nil {
		return fmt.Errorf("cli: monitor stream %s: %w", s.file.Name(), s.werr)
	}
	return nil
}
