package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsWriteBothProfiles(t *testing.T) {
	dir := t.TempDir()
	var p ProfileFlags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s: empty profile", path)
		}
	}
}

func TestProfileFlagsDisabledAreNoOps(t *testing.T) {
	var p ProfileFlags
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
