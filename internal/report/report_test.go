package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-longer-name", "2", "extra-ignored")
	tb.AddRow("short")
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "Name") {
		t.Fatalf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 1+1+1+3 { // title, header, rule, rows
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
	// Alignment: all data lines equal length.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned rows:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", "plain")
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "a,b\n\"x,y\",plain\n"
	if buf.String() != want {
		t.Fatalf("csv %q want %q", buf.String(), want)
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != strings.Repeat("█", 5) {
		t.Fatal("half bar")
	}
	if Bar(20, 10, 10) != strings.Repeat("█", 10) {
		t.Fatal("clamped bar")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Fatal("degenerate bars")
	}
}

func TestBarChartAndSeries(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "chart", []string{"a", "bb"}, []float64{1, 2}, "FIT")
	if !strings.Contains(buf.String(), "chart") || !strings.Contains(buf.String(), "bb") {
		t.Fatalf("chart:\n%s", buf.String())
	}
	buf.Reset()
	Series(&buf, "s", "x", "y", []float64{1, 2}, []float64{3, 4})
	if !strings.Contains(buf.String(), "s\n") {
		t.Fatalf("series:\n%s", buf.String())
	}
}
