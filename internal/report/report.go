// Package report renders campaign results as aligned ASCII tables, CSV,
// and terminal bar charts — the textual equivalents of the paper's figures.
// It is the dependency-free base of the presentation layer: internal/figures
// builds every paper table on Table, and the serve figures endpoint ships
// the same tables as JSON (Table marshals its title, headers, and rows).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (quotes fields containing
// commas).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				fmt.Fprintf(w, "%q", c)
			} else {
				fmt.Fprint(w, c)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Bar renders a horizontal bar scaled so that maxVal spans width runes.
func Bar(val, maxVal float64, width int) string {
	if maxVal <= 0 || val < 0 {
		return ""
	}
	n := int(val / maxVal * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}

// BarChart renders labelled values as a terminal bar chart — the textual
// form of the paper's figures.
func BarChart(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintf(w, "%s\n", title)
	maxVal, maxLabel := 0.0, 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(w, "  %-*s %8.2f %-4s %s\n", maxLabel, labels[i], v, unit, Bar(v, maxVal, 40))
	}
}

// Series renders an x/y series as rows (the terminal form of the paper's
// curve figures).
func Series(w io.Writer, title string, xLabel, yLabel string, xs, ys []float64) {
	fmt.Fprintf(w, "%s\n  %-12s %-12s\n", title, xLabel, yLabel)
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	for i := range xs {
		fmt.Fprintf(w, "  %-12.4g %-12.4g %s\n", xs[i], ys[i], Bar(ys[i], maxY, 30))
	}
}
