// Selective hardening (paper §6.1): run a CAROL-FI campaign on DGEMM,
// derive the criticality table, build a protection plan under a 15%
// overhead budget, and demonstrate ABFT actually correcting an injected
// single-element error in a protected multiplication.
//
//	go run ./examples/hardening
package main

import (
	"fmt"
	"log"

	_ "phirel/internal/bench/all"
	"phirel/internal/core"
	"phirel/internal/mitigation"
	"phirel/internal/stats"
)

func main() {
	fmt.Println("Campaign: 2000 injections into DGEMM...")
	res, err := core.RunCampaign(core.CampaignConfig{
		Benchmark: "DGEMM", N: 2000, Seed: 99, BenchSeed: 1, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCriticality (conditional harmful rates per region):")
	for _, c := range res.Criticality(30) {
		fmt.Printf("  %-10s SDC %5.1f%%  DUE %5.1f%%  (n=%d)\n",
			c.Region, c.SDC.Percent(), c.DUE.Percent(), c.Injections)
	}

	plan := mitigation.SelectivePlan(res, 0.15, 30)
	fmt.Printf("\nSelective plan under 15%% overhead budget:\n")
	for _, e := range plan.Entries {
		fmt.Printf("  %-10s ← %-14s (removes %.2f%% absolute harm)\n",
			e.Region, e.Technique.Name, 100*e.HarmRemoved)
	}
	fmt.Printf("  total overhead %.0f%%, harmful outcomes %.1f%% → %.1f%% (×%.1f better)\n",
		100*plan.TotalOverhead, 100*plan.HarmBefore, 100*plan.HarmAfter, plan.Improvement())

	fmt.Println("\nABFT demo: correcting an injected error in a checksummed matmul")
	rng := stats.NewRNG(5)
	n := 32
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = 2*rng.Float64() - 1
		b[i] = 2*rng.Float64() - 1
	}
	m := mitigation.ABFTMatMul(a, b, n)
	victim := rng.Intn(n * n)
	m.Data[victim] += 3.14159 // the fault
	switch v := m.Check(1e-6); v {
	case mitigation.Corrected:
		fmt.Printf("  single corrupted element at %d detected and corrected in O(n)\n", victim)
	default:
		fmt.Printf("  unexpected verdict %v\n", v)
	}
}
