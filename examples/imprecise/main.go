// Imprecise computing (paper §4.4 / Figure 3): run an accelerated beam
// campaign on HotSpot and show how tolerating small relative output errors
// collapses its SDC FIT — the paper's headline "a 0.5% tolerance in the
// output value reduces the error rate by 85%" effect, driven by stencil
// attenuation.
//
//	go run ./examples/imprecise
package main

import (
	"fmt"
	"log"
	"os"

	"phirel/internal/analysis"
	"phirel/internal/beam"
	_ "phirel/internal/bench/all"
	"phirel/internal/report"
)

func main() {
	fmt.Println("Running accelerated beam campaign on HotSpot...")
	res, err := beam.Run(beam.Config{
		Benchmark: "HotSpot", Runs: 20000, Seed: 7, BenchSeed: 1, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := res.SDCFIT()
	fmt.Printf("Strict SDC FIT (any bit mismatch): %.1f (95%% CI %s) from %d SDC events\n\n",
		base.FIT, base.CI, res.Outcomes.SDC)

	tols := analysis.DefaultTolerances
	curve := res.ToleranceCurve(tols)
	xs := make([]float64, len(tols))
	ys := make([]float64, len(tols))
	labels := make([]string, len(tols))
	for i := range tols {
		xs[i] = 100 * tols[i]
		ys[i] = curve[i]
		labels[i] = fmt.Sprintf("%.1f%%", xs[i])
	}
	report.BarChart(os.Stdout, "SDC FIT reduction vs tolerated relative error (Figure 3)",
		labels, ys, "%red")
	fmt.Println()
	for i, tol := range tols {
		remaining := base.FIT * (1 - curve[i]/100)
		fmt.Printf("  tolerance %5.1f%% → FIT %6.1f (MTBF ×%.1f)\n",
			100*tol, remaining, base.FIT/max(remaining, 1e-9))
	}
	fmt.Println("\nCompare DGEMM, which lacks natural attenuation (paper: smallest decrease):")
	dg, err := beam.Run(beam.Config{
		Benchmark: "DGEMM", Runs: 20000, Seed: 7, BenchSeed: 1, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	dgCurve := dg.ToleranceCurve(tols)
	for i, tol := range tols {
		fmt.Printf("  tolerance %5.1f%% → HotSpot −%2.0f%%  DGEMM −%2.0f%%\n",
			100*tol, curve[i], dgCurve[i])
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
