// Spatial error patterns (paper §4.3 / Figure 2): run accelerated beam
// campaigns on LavaMD (3-D output → cubic patterns) and DGEMM (ABFT-friendly
// line/single patterns), print the pattern split, and show what fraction of
// DGEMM's SDCs an ABFT scheme could have handled — the paper's §4.3
// conclusion.
//
//	go run ./examples/beampatterns
package main

import (
	"fmt"
	"log"
	"os"

	"phirel/internal/analysis"
	"phirel/internal/beam"
	_ "phirel/internal/bench/all"
	"phirel/internal/report"
)

func main() {
	for _, name := range []string{"DGEMM", "LavaMD"} {
		res, err := beam.Run(beam.Config{
			Benchmark: name, Runs: 20000, Seed: 3, BenchSeed: 1, Workers: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		labels := make([]string, 0, len(analysis.Patterns))
		values := make([]float64, 0, len(analysis.Patterns))
		for _, p := range analysis.Patterns {
			labels = append(labels, p.String())
			values = append(values, res.PatternFIT(p).FIT)
		}
		report.BarChart(os.Stdout,
			fmt.Sprintf("%s — SDC FIT by spatial pattern (total %.1f FIT, %d events)",
				name, res.SDCFIT().FIT, res.Outcomes.SDC), labels, values, "FIT")
		fmt.Printf("  single-element share: %s (paper: <10%%)\n\n", res.SingleElementShare())

		if name == "DGEMM" {
			// ABFT for matmul corrects single, line and random patterns
			// in O(1) time (paper §4.3 citing Huang-Abraham).
			correctable := res.SDCByPattern[analysis.PatternSingle] +
				res.SDCByPattern[analysis.PatternLine] +
				res.SDCByPattern[analysis.PatternRandom]
			fmt.Printf("  ABFT-correctable SDCs (single+line+random): %d/%d = %.0f%%\n\n",
				correctable, res.Outcomes.SDC, 100*float64(correctable)/float64(res.Outcomes.SDC))
		}
	}
}
