// Quickstart: inject 200 transient faults into DGEMM with the CAROL-FI
// analog and print the outcome breakdown — the whole pipeline in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	_ "phirel/internal/bench/all"
	"phirel/internal/core"
)

func main() {
	res, err := core.RunCampaign(core.CampaignConfig{
		Benchmark: "DGEMM",
		N:         200,
		Seed:      42,
		BenchSeed: 1,
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DGEMM, %d injections (Single/Double/Random/Zero round-robin):\n", res.N)
	fmt.Printf("  masked: %s\n", res.Outcomes.MaskedShare())
	fmt.Printf("  SDC:    %s\n", res.Outcomes.SDCPVF())
	fmt.Printf("  DUE:    %s (%d crashes, %d hangs)\n",
		res.Outcomes.DUEPVF(), res.Outcomes.DUECrash, res.Outcomes.DUEHang)
	fmt.Println("\nMost critical code regions:")
	for _, c := range res.Criticality(10) {
		fmt.Printf("  %-10s harmful %.1f%% over %d injections\n",
			c.Region, c.Harmful.Percent(), c.Injections)
	}
}
