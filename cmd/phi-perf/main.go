// Command phi-perf runs the fixed-seed performance suite (internal/perf)
// and either records the result or gates against a committed baseline.
//
// Record a run:
//
//	phi-perf -out run.json -label baseline
//
// Gate against a committed BENCH_<n>.json (exit 1 on statistically
// significant regression beyond the margin):
//
//	phi-perf -baseline BENCH_7.json -check -samples 6 -sample-time 60ms
//
// Assemble the committed artifact from recorded runs:
//
//	phi-perf -assemble BENCH_7.json -issue 7 -before before.json -after after.json
//
// Measure the sweep service path instead (cold submission vs exact cache
// hit vs partial-overlap hit, through the real HTTP handler with
// in-process workers):
//
//	phi-perf -serve -samples 10 -serve-n 24 -out serve-run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"phirel/internal/perf"
)

func main() {
	var (
		out        = flag.String("out", "", "write the measured run as JSON to this file")
		label      = flag.String("label", "", "label recorded in the run")
		samples    = flag.Int("samples", 10, "samples per case")
		sampleTime = flag.Duration("sample-time", 100*time.Millisecond, "minimum wall time per sample")
		filter     = flag.String("filter", "", "regexp restricting which cases run")
		baseline   = flag.String("baseline", "", "BENCH_<n>.json (or bare run) to compare against")
		check      = flag.Bool("check", false, "exit 1 when the comparison finds a regression")
		alpha      = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney U test")
		margin     = flag.Float64("margin", 0.10, "median slowdown tolerated before a significant delta is a regression")
		serveMode  = flag.Bool("serve", false, "measure the sweep service path (cold vs exact cache hit vs partial-overlap POST latency) instead of the hot-path suite")
		serveN     = flag.Int("serve-n", 24, "serve: per-cell trial count of the cold sweep; the partial request doubles it")
		assemble   = flag.String("assemble", "", "write a BENCH file assembled from -before/-after instead of measuring")
		beforePath = flag.String("before", "", "pre-optimization run JSON for -assemble")
		afterPath  = flag.String("after", "", "baseline run JSON for -assemble")
		issue      = flag.Int("issue", 0, "issue number recorded by -assemble")
		notes      = flag.String("notes", "", "notes recorded by -assemble")
	)
	flag.Parse()
	if *serveMode {
		if err := runServe(*out, *label, *samples, *serveN); err != nil {
			fmt.Fprintln(os.Stderr, "phi-perf:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *label, *samples, *sampleTime, *filter, *baseline, *check,
		*alpha, *margin, *assemble, *beforePath, *afterPath, *issue, *notes); err != nil {
		fmt.Fprintln(os.Stderr, "phi-perf:", err)
		os.Exit(1)
	}
}

func run(out, label string, samples int, sampleTime time.Duration, filter, baseline string,
	check bool, alpha, margin float64, assemble, beforePath, afterPath string, issue int, notes string) error {
	if assemble != "" {
		return runAssemble(assemble, beforePath, afterPath, issue, notes)
	}
	opt := perf.Options{
		Samples:       samples,
		MinSampleTime: sampleTime,
		Label:         label,
		Progress:      func(line string) { fmt.Println(line) },
	}
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
		opt.Filter = re
	}
	run, err := perf.Measure(perf.DefaultSuite(), opt)
	if err != nil {
		return err
	}
	if out != "" {
		if err := perf.WriteJSON(out, run); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	if baseline == "" {
		return nil
	}
	f, err := perf.ReadFile(baseline)
	if err != nil {
		return err
	}
	deltas := perf.Compare(f.Baseline, run, alpha, margin)
	fmt.Print(perf.FormatDeltas(deltas))
	if check {
		bad := 0
		for _, d := range deltas {
			if d.Regression || d.Missing {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d regression(s)/missing case(s) vs %s", bad, baseline)
		}
		fmt.Println("perf-gate: no significant regression vs", baseline)
	}
	return nil
}

func runAssemble(out, beforePath, afterPath string, issue int, notes string) error {
	if afterPath == "" {
		return fmt.Errorf("-assemble requires -after")
	}
	af, err := perf.ReadFile(afterPath)
	if err != nil {
		return err
	}
	f := perf.File{Schema: 1, Issue: issue, Notes: notes, Baseline: af.Baseline}
	if beforePath != "" {
		bf, err := perf.ReadFile(beforePath)
		if err != nil {
			return err
		}
		f.Before = bf.Baseline
	}
	if err := perf.WriteJSON(out, f); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
