package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	_ "phirel/internal/bench/all"
	"phirel/internal/distrib"
	"phirel/internal/fault"
	"phirel/internal/fleet"
	"phirel/internal/perf"
	"phirel/internal/serve"
)

// runServe measures the sweep service path end to end through the real
// HTTP handler with in-process workers: for each sample a fresh question
// is submitted cold, resubmitted (exact cache hit), and then asked again
// at double the trial count (partial-overlap hit). Latencies land in a
// perf.Run with one entry per path, so BENCH files and FormatDeltas work
// on service numbers exactly as on hot-path numbers. The partial path is
// verified, not just timed: every doubled request must be admitted as
// partial and compute exactly the missing trials, or the measurement
// fails.
func runServe(out, label string, samples, n int) error {
	if samples <= 0 {
		samples = 10
	}
	dir, err := os.MkdirTemp("", "phi-perf-serve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	launcher := distrib.LauncherFunc(func(ctx context.Context, task distrib.Task, stderr io.Writer) error {
		spec, err := fleet.ReadSpecFile(task.SpecPath)
		if err != nil {
			return err
		}
		var res *fleet.SweepResult
		if task.Plan != nil {
			res, err = spec.RunPlan(ctx, *task.Plan)
		} else {
			res, err = spec.RunShard(ctx, task.Shard, task.Count)
		}
		if err != nil {
			return err
		}
		return res.WriteFile(task.OutPath)
	})
	sched, err := distrib.NewScheduler(distrib.Options{
		Shards: 2, Launcher: launcher, Dir: dir,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer sched.Close()
	ts := httptest.NewServer(serve.New(sched, serve.WithCacheDir(dir+"/cache")).Handler())
	defer ts.Close()

	post := func(spec fleet.Sweep) (serve.Status, time.Duration, error) {
		var b bytes.Buffer
		if err := spec.WriteSpec(&b); err != nil {
			return serve.Status{}, 0, err
		}
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", &b)
		if err != nil {
			return serve.Status{}, 0, err
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return serve.Status{}, 0, fmt.Errorf("POST %d: %w", resp.StatusCode, err)
		}
		first := st
		for st.State != "done" {
			if st.State == "failed" || st.State == "cancelled" {
				return st, 0, fmt.Errorf("sweep %.12s reached %s: %s", st.ID, st.State, st.Error)
			}
			time.Sleep(2 * time.Millisecond)
			r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
			if err != nil {
				return st, 0, err
			}
			err = json.NewDecoder(r.Body).Decode(&st)
			r.Body.Close()
			if err != nil {
				return st, 0, err
			}
		}
		// The admission classification (partial, trial split) is on the POST
		// response; the poll loop only adds the terminal state.
		first.State = st.State
		return first, time.Since(start), nil
	}

	specFor := func(i int) fleet.Sweep {
		return fleet.Sweep{
			Benchmarks: []string{"DGEMM"},
			Models:     []fault.Model{fault.Single},
			N:          n,
			Seed:       uint64(9000 + i),
			BenchSeed:  1,
			Workers:    1,
		}
	}

	lat := map[string][]float64{}
	for i := 0; i < samples; i++ {
		small := specFor(i)
		big := small
		big.N *= 2

		st, d, err := post(small)
		if err != nil {
			return err
		}
		if st.Cached || st.Partial {
			return fmt.Errorf("sample %d: cold submission was served from cache: %+v", i, st)
		}
		lat["serve/cold"] = append(lat["serve/cold"], float64(d.Nanoseconds()))

		st, d, err = post(small)
		if err != nil {
			return err
		}
		if !st.Cached {
			return fmt.Errorf("sample %d: repeat submission missed the cache: %+v", i, st)
		}
		lat["serve/exact-hit"] = append(lat["serve/exact-hit"], float64(d.Nanoseconds()))

		// The control: the same 2N-sized question with no usable prefix
		// (fresh seed family) — what the partial request would cost without
		// the overlap planner.
		control := specFor(9000 + i)
		control.N = big.N
		st, d, err = post(control)
		if err != nil {
			return err
		}
		if st.Cached || st.Partial {
			return fmt.Errorf("sample %d: control submission was served from cache: %+v", i, st)
		}
		lat["serve/cold-2x"] = append(lat["serve/cold-2x"], float64(d.Nanoseconds()))

		st, d, err = post(big)
		if err != nil {
			return err
		}
		if !st.Partial || st.TrialsComputed != st.TrialsFromCache || st.TrialsComputed == 0 {
			return fmt.Errorf("sample %d: doubled submission was not a half-cached partial: %+v", i, st)
		}
		lat["serve/partial-hit"] = append(lat["serve/partial-hit"], float64(d.Nanoseconds()))
		fmt.Printf("sample %2d: cold %s, exact-hit %s, cold-2x %s, partial-hit %s (2N request computed %d of %d trials)\n",
			i, time.Duration(lat["serve/cold"][i]).Round(time.Microsecond),
			time.Duration(lat["serve/exact-hit"][i]).Round(time.Microsecond),
			time.Duration(lat["serve/cold-2x"][i]).Round(time.Microsecond),
			time.Duration(lat["serve/partial-hit"][i]).Round(time.Microsecond),
			st.TrialsComputed, st.TrialsComputed+st.TrialsFromCache)
	}

	run := &perf.Run{
		Schema:    1,
		Label:     label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Time:      time.Now().UTC().Format(time.RFC3339),
		Samples:   samples,
	}
	for _, name := range []string{"serve/cold", "serve/exact-hit", "serve/cold-2x", "serve/partial-hit"} {
		med := median(lat[name])
		run.Entries = append(run.Entries, perf.Entry{
			Name: name, Trials: 1, SamplesNs: lat[name],
			NsPerTrial: med, TrialsPerSec: 1e9 / med,
		})
		fmt.Printf("%-20s median %s per request\n", name, time.Duration(med).Round(time.Microsecond))
	}
	if out != "" {
		if err := perf.WriteJSON(out, run); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	return nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
