// Command phi-report re-derives campaign tables from JSONL logs written by
// carol-fi — the analog of the paper artifact's parser scripts over the
// public log release. It reconstructs outcome shares, per-model and
// per-window PVF, and per-region criticality purely from the log. With
// -sweep it instead renders the paper figures from a fleet SweepResult
// written by phi-bench -sweep -out.
//
// Usage:
//
//	phi-report -in logs.jsonl [-csv]
//	phi-report -in - [-csv]   # read the JSONL log from stdin
//	phi-report -sweep sweep.json [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"phirel/internal/cli"
	"phirel/internal/core"
	"phirel/internal/fault"
	"phirel/internal/figures"
	"phirel/internal/fleet"
	"phirel/internal/report"
	"phirel/internal/state"
	"phirel/internal/trace"
)

func main() {
	var (
		in    = flag.String("in", "", "JSONL log written by carol-fi -out ('-' = stdin)")
		sweep = flag.String("sweep", "", "SweepResult JSON written by phi-bench -sweep -out")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *sweep != "" {
		renderSweep(*sweep, *csv)
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in (or -sweep)"))
	}
	f, name, err := cli.OpenInput(*in, os.Stdin)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	records, err := trace.Read[core.InjectionRecord](f)
	if err != nil {
		fatal(err)
	}
	if len(records) == 0 {
		fatal(fmt.Errorf("no records in %s", name))
	}

	// Group by benchmark and rebuild the aggregates.
	type agg struct {
		outcomes core.OutcomeCounts
		byModel  map[fault.Model]core.OutcomeCounts
		byRegion map[state.Region]core.OutcomeCounts
		byWindow map[int]core.OutcomeCounts
		maxWin   int
	}
	groups := map[string]*agg{}
	for _, rec := range records {
		g := groups[rec.Benchmark]
		if g == nil {
			g = &agg{
				byModel:  map[fault.Model]core.OutcomeCounts{},
				byRegion: map[state.Region]core.OutcomeCounts{},
				byWindow: map[int]core.OutcomeCounts{},
			}
			groups[rec.Benchmark] = g
		}
		o := rec.OutcomeOf()
		g.outcomes.Add(o)
		mc := g.byModel[rec.ModelOf()]
		mc.Add(o)
		g.byModel[rec.ModelOf()] = mc
		rc := g.byRegion[rec.Region]
		rc.Add(o)
		g.byRegion[rec.Region] = rc
		wc := g.byWindow[rec.Window]
		wc.Add(o)
		g.byWindow[rec.Window] = wc
		if rec.Window > g.maxWin {
			g.maxWin = rec.Window
		}
	}

	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			fmt.Println(t)
		}
	}

	outcomes := report.NewTable("Outcomes from log (Figure 4)",
		"Benchmark", "Masked %", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		tot := float64(g.outcomes.Total())
		outcomes.AddRow(n,
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.Masked)/tot),
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.SDC)/tot),
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.DUE())/tot),
			fmt.Sprintf("%d", g.outcomes.Total()))
	}
	emit(outcomes)

	models := report.NewTable("Fault-model PVF from log (Figure 5)",
		"Benchmark", "Model", "SDC %", "DUE %", "N")
	for _, n := range names {
		for _, m := range fault.Models {
			c := groups[n].byModel[m]
			if c.Total() == 0 {
				continue
			}
			models.AddRow(n, m.String(),
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(models)

	windows := report.NewTable("Time-window PVF from log (Figure 6)",
		"Benchmark", "Window", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		for w := 0; w <= g.maxWin; w++ {
			c := g.byWindow[w]
			if c.Total() == 0 {
				continue
			}
			windows.AddRow(n, fmt.Sprintf("%d", w+1),
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(windows)

	crit := report.NewTable("Region criticality from log (§6)",
		"Benchmark", "Region", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		regions := make([]string, 0, len(g.byRegion))
		for r := range g.byRegion {
			regions = append(regions, string(r))
		}
		sort.Strings(regions)
		for _, r := range regions {
			c := g.byRegion[state.Region(r)]
			if c.Total() < 5 {
				continue
			}
			crit.AddRow(n, r,
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(crit)
}

// renderSweep regenerates the campaign figures from a fleet sweep artifact
// — injection cells feed the Figure 4/5/6 + Table 1 renderers, beam cells
// the Figure 2/3 + Table 2 renderers, one pass per ablation arm — so a CI
// artifact and a fresh run print identical tables.
func renderSweep(path string, csv bool) {
	sr, err := fleet.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if len(sr.Cells) == 0 && len(sr.BeamCells) == 0 {
		fatal(fmt.Errorf("no cells in %s", path))
	}
	emit := func(t *report.Table) {
		if csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			fmt.Println(t)
		}
	}
	// figures.SweepGroups is the one definition of what a sweep renders as
	// (shared with the phi-serve figures endpoint); each group is one
	// ablation arm, bannered only when its kind has siblings to tell apart.
	groups := figures.SweepGroups(sr)
	perKind := map[string]int{}
	for _, g := range groups {
		perKind[g.Kind]++
	}
	for _, g := range groups {
		if perKind[g.Kind] > 1 {
			fmt.Printf("== %s ==\n\n", g.Label)
		}
		for _, t := range g.Tables {
			emit(t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-report:", err)
	os.Exit(1)
}
