// Command phi-report re-derives campaign tables from JSONL logs written by
// carol-fi — the analog of the paper artifact's parser scripts over the
// public log release. It reconstructs outcome shares, per-model and
// per-window PVF, and per-region criticality purely from the log. With
// -sweep it instead renders the paper figures from a fleet SweepResult
// written by phi-bench -sweep -out.
//
// Usage:
//
//	phi-report -in logs.jsonl [-csv]
//	phi-report -sweep sweep.json [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"phirel/internal/core"
	"phirel/internal/fault"
	"phirel/internal/figures"
	"phirel/internal/fleet"
	"phirel/internal/report"
	"phirel/internal/state"
	"phirel/internal/trace"
)

func main() {
	var (
		in    = flag.String("in", "", "JSONL log written by carol-fi -out")
		sweep = flag.String("sweep", "", "SweepResult JSON written by phi-bench -sweep -out")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *sweep != "" {
		renderSweep(*sweep, *csv)
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in (or -sweep)"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	records, err := trace.Read[core.InjectionRecord](f)
	if err != nil {
		fatal(err)
	}
	if len(records) == 0 {
		fatal(fmt.Errorf("no records in %s", *in))
	}

	// Group by benchmark and rebuild the aggregates.
	type agg struct {
		outcomes core.OutcomeCounts
		byModel  map[fault.Model]core.OutcomeCounts
		byRegion map[state.Region]core.OutcomeCounts
		byWindow map[int]core.OutcomeCounts
		maxWin   int
	}
	groups := map[string]*agg{}
	for _, rec := range records {
		g := groups[rec.Benchmark]
		if g == nil {
			g = &agg{
				byModel:  map[fault.Model]core.OutcomeCounts{},
				byRegion: map[state.Region]core.OutcomeCounts{},
				byWindow: map[int]core.OutcomeCounts{},
			}
			groups[rec.Benchmark] = g
		}
		o := rec.OutcomeOf()
		g.outcomes.Add(o)
		mc := g.byModel[rec.ModelOf()]
		mc.Add(o)
		g.byModel[rec.ModelOf()] = mc
		rc := g.byRegion[rec.Region]
		rc.Add(o)
		g.byRegion[rec.Region] = rc
		wc := g.byWindow[rec.Window]
		wc.Add(o)
		g.byWindow[rec.Window] = wc
		if rec.Window > g.maxWin {
			g.maxWin = rec.Window
		}
	}

	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			fmt.Println(t)
		}
	}

	outcomes := report.NewTable("Outcomes from log (Figure 4)",
		"Benchmark", "Masked %", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		tot := float64(g.outcomes.Total())
		outcomes.AddRow(n,
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.Masked)/tot),
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.SDC)/tot),
			fmt.Sprintf("%.1f", 100*float64(g.outcomes.DUE())/tot),
			fmt.Sprintf("%d", g.outcomes.Total()))
	}
	emit(outcomes)

	models := report.NewTable("Fault-model PVF from log (Figure 5)",
		"Benchmark", "Model", "SDC %", "DUE %", "N")
	for _, n := range names {
		for _, m := range fault.Models {
			c := groups[n].byModel[m]
			if c.Total() == 0 {
				continue
			}
			models.AddRow(n, m.String(),
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(models)

	windows := report.NewTable("Time-window PVF from log (Figure 6)",
		"Benchmark", "Window", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		for w := 0; w <= g.maxWin; w++ {
			c := g.byWindow[w]
			if c.Total() == 0 {
				continue
			}
			windows.AddRow(n, fmt.Sprintf("%d", w+1),
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(windows)

	crit := report.NewTable("Region criticality from log (§6)",
		"Benchmark", "Region", "SDC %", "DUE %", "N")
	for _, n := range names {
		g := groups[n]
		regions := make([]string, 0, len(g.byRegion))
		for r := range g.byRegion {
			regions = append(regions, string(r))
		}
		sort.Strings(regions)
		for _, r := range regions {
			c := g.byRegion[state.Region(r)]
			if c.Total() < 5 {
				continue
			}
			crit.AddRow(n, r,
				fmt.Sprintf("%.1f", c.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", c.DUEPVF().Percent()),
				fmt.Sprintf("%d", c.Total()))
		}
	}
	emit(crit)
}

// renderSweep regenerates the campaign figures from a fleet sweep artifact
// — injection cells feed the Figure 4/5/6 + Table 1 renderers, beam cells
// the Figure 2/3 + Table 2 renderers, one pass per ablation arm — so a CI
// artifact and a fresh run print identical tables.
func renderSweep(path string, csv bool) {
	sr, err := fleet.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if len(sr.Cells) == 0 && len(sr.BeamCells) == 0 {
		fatal(fmt.Errorf("no cells in %s", path))
	}
	emit := func(t *report.Table) {
		if csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			fmt.Println(t)
		}
	}
	// A multi-policy sweep is an ablation: render each arm separately
	// instead of conflating them into one set of figures.
	policies := sr.Spec.Policies
	if len(policies) == 0 { // hand-built artifact without a normalised spec
		seen := map[state.Policy]bool{}
		for _, c := range sr.Cells {
			if !seen[c.Policy] {
				seen[c.Policy] = true
				policies = append(policies, c.Policy)
			}
		}
	}
	for _, policy := range policies {
		merged := sr.MergedFor(policy)
		if len(merged) == 0 {
			continue
		}
		if len(policies) > 1 {
			fmt.Printf("== policy: %s ==\n\n", policy)
		}
		emit(figures.Figure4(merged))
		emit(figures.Figure5(merged, false))
		emit(figures.Figure5(merged, true))
		emit(figures.Figure6(merged, false))
		emit(figures.Figure6(merged, true))
		names := make([]string, 0, len(merged))
		for n := range merged {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			emit(figures.Table1(merged[n], 20))
		}
	}
	// Beam cells render per (device, ECC) ablation arm.
	arms := sr.BeamArms()
	for _, arm := range arms {
		results := sr.BeamFor(arm.Device, arm.DisableECC)
		if len(results) == 0 {
			continue
		}
		if len(arms) > 1 {
			ecc := "on"
			if arm.DisableECC {
				ecc = "off"
			}
			fmt.Printf("== beam arm: %s, ECC %s ==\n\n", arm.Device, ecc)
		}
		emit(figures.Figure2(results))
		emit(figures.Figure3(results))
		emit(figures.Table2(results))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-report:", err)
	os.Exit(1)
}
