package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	_ "phirel/internal/bench/all"
	"phirel/internal/fault"
	"phirel/internal/fleet"
)

// TestMain doubles as the phi-report executable (re-exec'd with
// PHIREL_BE_PHI_REPORT=1), so exit codes and stderr text are tested exactly
// as an operator sees them.
func TestMain(m *testing.M) {
	if os.Getenv("PHIREL_BE_PHI_REPORT") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runReport(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PHIREL_BE_PHI_REPORT=1")
	cmd.Stdout = io.Discard
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec failed before main ran: %v", err)
	}
	return ee.ExitCode(), stderr.String()
}

func expectReportFailure(t *testing.T, needle string, args ...string) {
	t.Helper()
	code, stderr := runReport(t, args...)
	if code == 0 {
		t.Fatalf("phi-report %v exited 0, want failure", args)
	}
	if !strings.Contains(stderr, needle) {
		t.Fatalf("phi-report %v stderr misses %q:\n%s", args, needle, stderr)
	}
}

func TestReportNoInput(t *testing.T) {
	expectReportFailure(t, "missing -in")
}

func TestReportSweepMissingFile(t *testing.T) {
	expectReportFailure(t, "no such file", "-sweep", filepath.Join(t.TempDir(), "nope.json"))
}

func TestReportSweepTruncatedArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(`{"spec": {"n"`), 0o644); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "truncated", "-sweep", path)
}

// TestReportSweepRejectsUnmergedShardPartial: rendering one shard as if it
// were the campaign would silently misreport every figure, so the CLI must
// refuse and point at phi-merge.
func TestReportSweepRejectsUnmergedShardPartial(t *testing.T) {
	spec := fleet.Sweep{
		Benchmarks: []string{"DGEMM"},
		Models:     []fault.Model{fault.Single},
		N:          6, Seed: 1701, BenchSeed: 1, Workers: 2,
	}
	res, err := spec.RunShard(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep-shard-1-of-3.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "phi-merge", "-sweep", path)
	expectReportFailure(t, "unmerged shard partial", "-sweep", path)
}

func TestReportLogMissingFile(t *testing.T) {
	expectReportFailure(t, "no such file", "-in", filepath.Join(t.TempDir(), "nope.jsonl"))
}

func TestReportLogEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "no records", "-in", path)
}
