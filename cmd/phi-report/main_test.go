package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	_ "phirel/internal/bench/all"
	"phirel/internal/core"
	"phirel/internal/fault"
	"phirel/internal/fleet"
)

// TestMain doubles as the phi-report executable (re-exec'd with
// PHIREL_BE_PHI_REPORT=1), so exit codes and stderr text are tested exactly
// as an operator sees them.
func TestMain(m *testing.M) {
	if os.Getenv("PHIREL_BE_PHI_REPORT") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runReport(t *testing.T, args ...string) (int, string) {
	t.Helper()
	code, _, stderr := runReportIO(t, "", args...)
	return code, stderr
}

// runReportIO re-execs phi-report with stdin wired up — the transport the
// '-in -' convention reads from — and captures both output streams.
func runReportIO(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PHIREL_BE_PHI_REPORT=1")
	cmd.Stdin = strings.NewReader(stdin)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stdout.String(), stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec failed before main ran: %v", err)
	}
	return ee.ExitCode(), stdout.String(), stderr.String()
}

func expectReportFailure(t *testing.T, needle string, args ...string) {
	t.Helper()
	code, stderr := runReport(t, args...)
	if code == 0 {
		t.Fatalf("phi-report %v exited 0, want failure", args)
	}
	if !strings.Contains(stderr, needle) {
		t.Fatalf("phi-report %v stderr misses %q:\n%s", args, needle, stderr)
	}
}

func TestReportNoInput(t *testing.T) {
	expectReportFailure(t, "missing -in")
}

func TestReportSweepMissingFile(t *testing.T) {
	expectReportFailure(t, "no such file", "-sweep", filepath.Join(t.TempDir(), "nope.json"))
}

func TestReportSweepTruncatedArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(`{"spec": {"n"`), 0o644); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "truncated", "-sweep", path)
}

// TestReportSweepRejectsUnmergedShardPartial: rendering one shard as if it
// were the campaign would silently misreport every figure, so the CLI must
// refuse and point at phi-merge.
func TestReportSweepRejectsUnmergedShardPartial(t *testing.T) {
	spec := fleet.Sweep{
		Benchmarks: []string{"DGEMM"},
		Models:     []fault.Model{fault.Single},
		N:          6, Seed: 1701, BenchSeed: 1, Workers: 2,
	}
	res, err := spec.RunShard(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep-shard-1-of-3.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "phi-merge", "-sweep", path)
	expectReportFailure(t, "unmerged shard partial", "-sweep", path)
}

func TestReportLogMissingFile(t *testing.T) {
	expectReportFailure(t, "no such file", "-in", filepath.Join(t.TempDir(), "nope.jsonl"))
}

func TestReportLogEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	expectReportFailure(t, "no records", "-in", path)
}

// TestReportLogStdinEmpty: '-in -' reads stdin, so the empty-input error
// must name stdin, not a file called "-".
func TestReportLogStdinEmpty(t *testing.T) {
	code, _, stderr := runReportIO(t, "", "-in", "-")
	if code == 0 {
		t.Fatal("phi-report -in - with empty stdin exited 0, want failure")
	}
	if !strings.Contains(stderr, "no records in stdin") {
		t.Fatalf("stderr misses %q:\n%s", "no records in stdin", stderr)
	}
}

func TestReportLogStdinGarbage(t *testing.T) {
	code, _, stderr := runReportIO(t, "this is not a JSONL log\n", "-in", "-")
	if code == 0 {
		t.Fatal("phi-report -in - with garbage stdin exited 0, want failure")
	}
	if stderr == "" {
		t.Fatal("no error reported for garbage stdin")
	}
}

// TestReportLogStdin: a piped JSONL log renders the same tables as a file
// input — the streaming form of the parser path.
func TestReportLogStdin(t *testing.T) {
	var log bytes.Buffer
	enc := json.NewEncoder(&log)
	for seq, outcome := range []string{"masked", "sdc", "masked"} {
		rec := core.InjectionRecord{
			Seq: seq, Benchmark: "DGEMM", Model: "single", Outcome: outcome,
			Region: "input", Elem: -1, Fired: true,
		}
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	code, stdout, stderr := runReportIO(t, log.String(), "-in", "-")
	if code != 0 {
		t.Fatalf("phi-report -in - exited %d:\n%s", code, stderr)
	}
	for _, needle := range []string{"Figure 4", "DGEMM"} {
		if !strings.Contains(stdout, needle) {
			t.Fatalf("stdout misses %q:\n%s", needle, stdout)
		}
	}
}
