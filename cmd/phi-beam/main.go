// Command phi-beam runs accelerated neutron-beam campaigns against the
// simulated Xeon Phi and prints the paper's Figure 2 (FIT + spatial
// patterns), Figure 3 (FIT reduction vs tolerance), and the machine-scale
// extrapolation table (§4.2). Campaigns run on the unified streaming engine
// (internal/engine): per-run records stream straight to the -out JSONL log
// in O(workers) memory, SIGINT cancels cleanly leaving a valid partial log,
// and -progress reports completion like phi-bench does.
//
// Usage:
//
//	phi-beam [-runs 40000] [-seed N] [-workers N] [-device KNC3120A]
//	         [-no-ecc] [-out beam.jsonl] [-progress] [-extrapolate]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"phirel/internal/beam"
	"phirel/internal/bench/all"
	"phirel/internal/figures"
	"phirel/internal/phi"
	"phirel/internal/trace"
)

func main() {
	var (
		runs        = flag.Int("runs", 40000, "accelerated runs per benchmark")
		seed        = flag.Uint64("seed", 1701, "campaign seed")
		benchSeed   = flag.Uint64("bench-seed", 1, "workload input seed")
		workers     = flag.Int("workers", 8, "parallel shards")
		device      = flag.String("device", phi.DefaultDevice, "device model key")
		noECC       = flag.Bool("no-ecc", false, "disable SECDED (ablation A2)")
		out         = flag.String("out", "", "write per-run JSONL log here (streamed)")
		progress    = flag.Bool("progress", false, "report per-benchmark completion on stderr")
		extrapolate = flag.Bool("extrapolate", true, "print Trinity/exascale extrapolation")
	)
	flag.Parse()

	dev, err := phi.NewDevice(*device)
	if err != nil {
		fatal(err)
	}

	var (
		logw *trace.Writer
		logf *os.File
	)
	if *out != "" {
		logf, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer logf.Close()
		logw = trace.NewWriter(logf)
		defer logw.Flush()
	}
	// die flushes the partial log before exiting, so an interrupted or
	// failed campaign still leaves valid JSONL behind (fatal skips defers).
	die := func(err error) {
		if logw != nil {
			logw.Flush()
			logf.Close()
		}
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results := map[string]*beam.Result{}
	for _, name := range all.BeamSuite {
		fmt.Fprintf(os.Stderr, "phi-beam: %d accelerated runs on %s...\n", *runs, name)
		cfg := beam.Config{
			Benchmark: name, Runs: *runs, Seed: *seed, BenchSeed: *benchSeed,
			Workers: *workers, Device: dev, DisableECC: *noECC,
		}
		if *progress {
			cfg.Progress = func(done, total int) {
				if done == total || done%(max(total/10, 1)) == 0 {
					fmt.Fprintf(os.Stderr, "phi-beam: %s %d/%d\n", name, done, total)
				}
			}
		}
		// Records stream straight to the JSONL log through a bounded
		// channel, so -out costs O(worker skew) memory instead of O(Runs);
		// the resequencer keeps the log byte-identical across runs even
		// though workers deliver interleaved.
		var writeDone chan error
		if logw != nil {
			ch := make(chan beam.Record, 1024)
			cfg.Stream = ch
			writeDone = make(chan error, 1)
			go func() {
				writeDone <- trace.CopyOrdered(ch, logw, func(r beam.Record) int { return r.Seq })
			}()
		}
		res, err := beam.RunContext(ctx, cfg)
		if logw != nil {
			if werr := <-writeDone; werr != nil {
				die(werr)
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) && logw != nil {
				fmt.Fprintf(os.Stderr, "phi-beam: interrupted; %d records flushed to %s\n",
					logw.Count(), *out)
			}
			die(err)
		}
		results[name] = res
	}

	fmt.Println(figures.Figure2(results))
	fmt.Println(figures.Figure3(results))
	if *extrapolate {
		fmt.Println(figures.Table2(results))
	}
	for _, name := range all.BeamSuite {
		r := results[name]
		fmt.Printf("%s: single-element SDC share %s (paper: <10%%)\n",
			name, r.SingleElementShare())
	}
	if logw != nil {
		fmt.Fprintf(os.Stderr, "phi-beam: wrote %d records to %s\n", logw.Count(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-beam:", err)
	os.Exit(1)
}
