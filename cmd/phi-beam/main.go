// Command phi-beam runs accelerated neutron-beam campaigns against the
// simulated Xeon Phi 3120A and prints the paper's Figure 2 (FIT + spatial
// patterns), Figure 3 (FIT reduction vs tolerance), and the machine-scale
// extrapolation table (§4.2).
//
// Usage:
//
//	phi-beam [-runs 40000] [-seed N] [-workers N] [-no-ecc]
//	         [-out beam.jsonl] [-extrapolate]
package main

import (
	"flag"
	"fmt"
	"os"

	"phirel/internal/beam"
	"phirel/internal/bench/all"
	"phirel/internal/figures"
	"phirel/internal/trace"
)

func main() {
	var (
		runs        = flag.Int("runs", 40000, "accelerated runs per benchmark")
		seed        = flag.Uint64("seed", 1701, "campaign seed")
		benchSeed   = flag.Uint64("bench-seed", 1, "workload input seed")
		workers     = flag.Int("workers", 8, "parallel shards")
		noECC       = flag.Bool("no-ecc", false, "disable SECDED (ablation A2)")
		out         = flag.String("out", "", "write per-run JSONL log here")
		extrapolate = flag.Bool("extrapolate", true, "print Trinity/exascale extrapolation")
	)
	flag.Parse()

	var logw *trace.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logw = trace.NewWriter(f)
		defer logw.Flush()
	}

	results := map[string]*beam.Result{}
	for _, name := range all.BeamSuite {
		fmt.Fprintf(os.Stderr, "phi-beam: %d accelerated runs on %s...\n", *runs, name)
		res, err := beam.Run(beam.Config{
			Benchmark: name, Runs: *runs, Seed: *seed, BenchSeed: *benchSeed,
			Workers: *workers, DisableECC: *noECC, KeepRecords: logw != nil,
		})
		if err != nil {
			fatal(err)
		}
		results[name] = res
		if logw != nil {
			if err := trace.WriteAll(logw, res.Records); err != nil {
				fatal(err)
			}
			res.Records = nil
		}
	}

	fmt.Println(figures.Figure2(results))
	fmt.Println(figures.Figure3(results))
	if *extrapolate {
		fmt.Println(figures.Table2(results))
	}
	for _, name := range all.BeamSuite {
		r := results[name]
		fmt.Printf("%s: single-element SDC share %s (paper: <10%%)\n",
			name, r.SingleElementShare())
	}
	if logw != nil {
		fmt.Fprintf(os.Stderr, "phi-beam: wrote %d records to %s\n", logw.Count(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-beam:", err)
	os.Exit(1)
}
