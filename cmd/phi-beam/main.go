// Command phi-beam runs accelerated neutron-beam campaigns against the
// simulated Xeon Phi and prints the paper's Figure 2 (FIT + spatial
// patterns), Figure 3 (FIT reduction vs tolerance), and the machine-scale
// extrapolation table (§4.2). Campaigns run on the unified streaming engine
// (internal/engine): per-run records stream straight to the -out JSONL log
// in O(workers) memory, SIGINT cancels cleanly leaving a valid partial log,
// and -progress reports completion like phi-bench does.
//
// Usage:
//
//	phi-beam [-runs 40000] [-seed N] [-workers N] [-device KNC3120A]
//	         [-no-ecc] [-out beam.jsonl] [-progress] [-extrapolate]
//	         [-monitor-jsonl mon.jsonl] [-monitor-temp 330] [-monitor-every 1000]
//
// With -monitor-jsonl a resident reliability monitor (internal/monitor)
// taps the same record stream the -out log consumes and appends rolling
// FIT/MTBF snapshots — one JSONL line per -monitor-every records plus one
// per benchmark boundary; the final line equals the post-hoc fit exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"phirel/internal/beam"
	"phirel/internal/bench/all"
	"phirel/internal/cli"
	"phirel/internal/engine"
	"phirel/internal/figures"
	"phirel/internal/monitor"
	"phirel/internal/phi"
	"phirel/internal/trace"
)

func main() {
	var (
		runs        = flag.Int("runs", 40000, "accelerated runs per benchmark")
		seed        = flag.Uint64("seed", 1701, "campaign seed")
		benchSeed   = flag.Uint64("bench-seed", 1, "workload input seed")
		workers     = flag.Int("workers", 8, "parallel shards")
		device      = flag.String("device", phi.DefaultDevice, "device model key")
		noECC       = flag.Bool("no-ecc", false, "disable SECDED (ablation A2)")
		out         = flag.String("out", "", "write per-run JSONL log here (streamed)")
		progress    = flag.Bool("progress", false, "report per-benchmark completion on stderr")
		extrapolate = flag.Bool("extrapolate", true, "print Trinity/exascale extrapolation")
	)
	var mon cli.MonitorFlags
	mon.Register(flag.CommandLine, "")
	flag.Parse()

	dev, err := phi.NewDevice(*device)
	if err != nil {
		fatal(err)
	}

	// The resident monitor consumes the same record stream the JSONL log
	// does; one monitor spans the whole suite, so its rolling aggregate is
	// the machine-level estimate across benchmarks.
	sink, err := mon.Open()
	if err != nil {
		fatal(err)
	}

	var (
		logw *trace.Writer
		logf *os.File
	)
	if *out != "" {
		logf, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer logf.Close()
		logw = trace.NewWriter(logf)
		defer logw.Flush()
	}
	// die flushes the partial log and monitor stream before exiting, so an
	// interrupted or failed campaign still leaves valid JSONL behind
	// (fatal skips defers).
	die := func(err error) {
		if logw != nil {
			logw.Flush()
			logf.Close()
		}
		if sink != nil {
			sink.Close()
		}
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results := map[string]*beam.Result{}
	for bi, name := range all.BeamSuite {
		fmt.Fprintf(os.Stderr, "phi-beam: %d accelerated runs on %s...\n", *runs, name)
		cfg := beam.Config{
			Benchmark: name, Runs: *runs, Seed: *seed, BenchSeed: *benchSeed,
			Workers: *workers, Device: dev, DisableECC: *noECC,
		}
		if *progress {
			cfg.Progress = func(done, total int) {
				if done == total || done%(max(total/10, 1)) == 0 {
					fmt.Fprintf(os.Stderr, "phi-beam: %s %d/%d\n", name, done, total)
				}
			}
		}
		// Records stream straight to the JSONL log through a bounded
		// channel, so -out costs O(worker skew) memory instead of O(Runs);
		// the resequencer keeps the log byte-identical across runs even
		// though workers deliver interleaved. With -monitor-jsonl the same
		// stream is teed to the resident monitor — both consumers see every
		// record, and the engine's close-on-return propagates through the
		// tee so each drains exactly once per campaign.
		var writeDone chan error
		var att *monitor.Attachment
		startLog := func(ch <-chan beam.Record) {
			writeDone = make(chan error, 1)
			go func() {
				writeDone <- trace.CopyOrdered(ch, logw, func(r beam.Record) int { return r.Seq })
			}()
		}
		switch {
		case logw != nil && sink != nil:
			ch := make(chan beam.Record, 1024)
			cfg.Stream = ch
			monCh := make(chan beam.Record, 1024)
			logCh := make(chan beam.Record, 1024)
			engine.Tee(ch, monCh, logCh)
			att = monitor.Attach(sink.Monitor, monCh)
			startLog(logCh)
		case sink != nil:
			ch := make(chan beam.Record, 1024)
			cfg.Stream = ch
			att = monitor.Attach(sink.Monitor, ch)
		case logw != nil:
			ch := make(chan beam.Record, 1024)
			cfg.Stream = ch
			startLog(ch)
		}
		res, err := beam.RunContext(ctx, cfg)
		if att != nil {
			att.Wait()
		}
		if writeDone != nil {
			if werr := <-writeDone; werr != nil {
				die(werr)
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) && logw != nil {
				fmt.Fprintf(os.Stderr, "phi-beam: interrupted; %d records flushed to %s\n",
					logw.Count(), *out)
			}
			die(err)
		}
		results[name] = res
		// Per-benchmark boundary snapshot; the last benchmark's is the
		// final line Close writes.
		if sink != nil && bi < len(all.BeamSuite)-1 {
			sink.Mark()
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phi-beam: wrote %d monitor snapshots to %s\n",
			sink.Lines(), mon.Out)
	}

	fmt.Println(figures.Figure2(results))
	fmt.Println(figures.Figure3(results))
	if *extrapolate {
		fmt.Println(figures.Table2(results))
	}
	for _, name := range all.BeamSuite {
		r := results[name]
		fmt.Printf("%s: single-element SDC share %s (paper: <10%%)\n",
			name, r.SingleElementShare())
	}
	if logw != nil {
		fmt.Fprintf(os.Stderr, "phi-beam: wrote %d records to %s\n", logw.Count(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-beam:", err)
	os.Exit(1)
}
