// Command carol-fi runs CAROL-FI fault-injection campaigns and prints the
// paper's Figure 4/5/6 tables, the per-region criticality table, and
// mitigation recommendations. With -out it also writes the per-injection
// JSONL log (the public-data analog), which cmd/phi-report can re-analyse.
//
// Usage:
//
//	carol-fi [-bench NAME|all] [-n 10000] [-models Single,Double,Random,Zero]
//	         [-policy by-frame|by-variable|by-bytes] [-seed N] [-workers N]
//	         [-out logs.jsonl] [-regions]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phirel/internal/bench/all"
	"phirel/internal/core"
	"phirel/internal/fault"
	"phirel/internal/figures"
	"phirel/internal/state"
	"phirel/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark name or 'all'")
		n         = flag.Int("n", 10000, "injections per benchmark (paper: >=10,000)")
		modelsArg = flag.String("models", "", "comma-separated fault models (default: all four)")
		policyArg = flag.String("policy", "by-frame", "site selection policy")
		seed      = flag.Uint64("seed", 1701, "campaign seed")
		benchSeed = flag.Uint64("bench-seed", 1, "workload input seed")
		workers   = flag.Int("workers", 8, "parallel injectors")
		out       = flag.String("out", "", "write per-injection JSONL log here")
		regions   = flag.Bool("regions", false, "print per-region criticality and recommendations")
	)
	flag.Parse()

	policy, err := state.ParsePolicy(*policyArg)
	if err != nil {
		fatal(err)
	}
	var models []fault.Model
	if *modelsArg != "" {
		for _, s := range strings.Split(*modelsArg, ",") {
			m, err := fault.ParseModel(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			models = append(models, m)
		}
	}
	names := all.Suite
	if *benchName != "all" {
		names = []string{*benchName}
	}

	var logw *trace.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logw = trace.NewWriter(f)
		defer logw.Flush()
	}

	results := map[string]*core.CampaignResult{}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "carol-fi: injecting %d faults into %s...\n", *n, name)
		res, err := core.RunCampaign(core.CampaignConfig{
			Benchmark: name, N: *n, Models: models, Policy: policy,
			Seed: *seed, BenchSeed: *benchSeed, Workers: *workers,
			KeepRecords: logw != nil,
		})
		if err != nil {
			fatal(err)
		}
		results[name] = res
		if logw != nil {
			if err := trace.WriteAll(logw, res.Records); err != nil {
				fatal(err)
			}
			res.Records = nil
		}
	}

	fmt.Println(figures.Figure4(results))
	fmt.Println(figures.Figure5(results, false))
	fmt.Println(figures.Figure5(results, true))
	fmt.Println(figures.Figure6(results, false))
	fmt.Println(figures.Figure6(results, true))
	if *regions {
		for _, name := range names {
			fmt.Println(figures.Table1(results[name], 20))
			fmt.Println(figures.Recommendations(results[name], 20))
		}
	}
	if logw != nil {
		fmt.Fprintf(os.Stderr, "carol-fi: wrote %d records to %s\n", logw.Count(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "carol-fi:", err)
	os.Exit(1)
}
