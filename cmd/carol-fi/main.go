// Command carol-fi runs CAROL-FI fault-injection campaigns and prints the
// paper's Figure 4/5/6 tables, the per-region criticality table, and
// mitigation recommendations. With -out it also writes the per-injection
// JSONL log (the public-data analog), which cmd/phi-report can re-analyse.
//
// Usage:
//
//	carol-fi [-bench NAME|all] [-n 10000] [-models Single,Double,Random,Zero]
//	         [-policy by-frame|by-variable|by-bytes] [-seed N] [-workers N]
//	         [-out logs.jsonl] [-regions]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"phirel/internal/bench/all"
	"phirel/internal/core"
	"phirel/internal/fault"
	"phirel/internal/figures"
	"phirel/internal/state"
	"phirel/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark name or 'all'")
		n         = flag.Int("n", 10000, "injections per benchmark (paper: >=10,000)")
		modelsArg = flag.String("models", "", "comma-separated fault models (default: all four)")
		policyArg = flag.String("policy", "by-frame", "site selection policy")
		seed      = flag.Uint64("seed", 1701, "campaign seed")
		benchSeed = flag.Uint64("bench-seed", 1, "workload input seed")
		workers   = flag.Int("workers", 8, "parallel injectors")
		out       = flag.String("out", "", "write per-injection JSONL log here")
		regions   = flag.Bool("regions", false, "print per-region criticality and recommendations")
	)
	flag.Parse()

	policy, err := state.ParsePolicy(*policyArg)
	if err != nil {
		fatal(err)
	}
	models, err := fault.ParseModels(*modelsArg)
	if err != nil {
		fatal(err)
	}
	names := all.Suite
	if *benchName != "all" {
		names = []string{*benchName}
	}

	var (
		logw *trace.Writer
		logf *os.File
	)
	if *out != "" {
		logf, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer logf.Close()
		logw = trace.NewWriter(logf)
		defer logw.Flush()
	}
	// die flushes the partial log before exiting, so an interrupted or
	// failed campaign still leaves valid JSONL behind (fatal skips defers).
	die := func(err error) {
		if logw != nil {
			logw.Flush()
			logf.Close()
		}
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results := map[string]*core.CampaignResult{}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "carol-fi: injecting %d faults into %s...\n", *n, name)
		cfg := core.CampaignConfig{
			Benchmark: name, N: *n, Models: models, Policy: policy,
			Seed: *seed, BenchSeed: *benchSeed, Workers: *workers,
			Progress: func(done, total int) {
				if done == total || done%(max(total/10, 1)) == 0 {
					fmt.Fprintf(os.Stderr, "carol-fi: %s %d/%d\n", name, done, total)
				}
			},
		}
		// Records stream straight to the JSONL log through a bounded
		// channel, so -out costs O(worker skew) memory instead of O(N);
		// the resequencer keeps the log byte-identical across runs even
		// though workers deliver interleaved.
		var writeDone chan error
		if logw != nil {
			ch := make(chan core.InjectionRecord, 1024)
			cfg.Stream = ch
			writeDone = make(chan error, 1)
			go func() {
				writeDone <- trace.CopyOrdered(ch, logw, func(r core.InjectionRecord) int { return r.Seq })
			}()
		}
		res, err := core.RunCampaignContext(ctx, cfg)
		if logw != nil {
			if werr := <-writeDone; werr != nil {
				die(werr)
			}
		}
		if err != nil {
			die(err)
		}
		results[name] = res
	}

	fmt.Println(figures.Figure4(results))
	fmt.Println(figures.Figure5(results, false))
	fmt.Println(figures.Figure5(results, true))
	fmt.Println(figures.Figure6(results, false))
	fmt.Println(figures.Figure6(results, true))
	if *regions {
		for _, name := range names {
			fmt.Println(figures.Table1(results[name], 20))
			fmt.Println(figures.Recommendations(results[name], 20))
		}
	}
	if logw != nil {
		fmt.Fprintf(os.Stderr, "carol-fi: wrote %d records to %s\n", logw.Count(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "carol-fi:", err)
	os.Exit(1)
}
