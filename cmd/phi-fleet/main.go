// Command phi-fleet is the distributed fan-out driver for fleet sweeps: it
// splits a sweep K ways along the shard seam, launches K phi-bench shard
// workers (local subprocesses by default, remote hosts with -ssh),
// supervises them — per-attempt timeouts, bounded retry with backoff for
// crashed workers, aggregated JSONL progress — and folds the validated
// partials into one merged artifact, byte-identical to a monolithic
// phi-bench -sweep with the same spec. It is the one-command form of the
// shard/merge loop that closes the ROADMAP remote-execution item.
//
// Usage:
//
//	phi-fleet -shards 10 -n 10000 -beam-runs 10000 -beam-ecc-ablation -out sweep.json
//	phi-fleet -shards 3 -spec spec.json -worker-cmd "bin/phi-bench" -out sweep.json
//	phi-fleet -shards 8 -ssh node1,node2,node3 -ssh-bin /opt/phirel/phi-bench -out sweep.json
//	phi-fleet -shards 16 -k8s -k8s-image ghcr.io/you/phirel:latest -k8s-namespace phirel -out sweep.json
//	phi-fleet -shards 8 -checkpoint-every 2000 -steal-interval 30s -out sweep.json
//
// The grid flags mirror phi-bench -sweep exactly, so swapping one command
// for the other changes nothing about the resulting artifact. Workers are
// resolved in this order: -k8s (one Kubernetes Job per shard, via kubectl),
// -ssh (remote), -worker-cmd (explicit local command), a phi-bench binary
// next to the phi-fleet executable, phi-bench from PATH.
//
// With -checkpoint-every N every worker periodically lands a valid partial
// covering its completed trial prefix, and a relaunched worker resumes
// from it instead of recomputing from trial zero. Adding -steal-interval
// arms the straggler watchdog: shards lagging the fleet's median progress
// rate are cancelled at a checkpoint boundary and their remaining trials
// re-split across idle slots. Both leave the merged artifact byte-identical
// to the uninterrupted run.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"phirel/internal/cli"
	"phirel/internal/distrib"
)

func main() {
	var grid cli.SweepFlags
	grid.Register(flag.CommandLine, "")
	var k8s cli.K8sFlags
	k8s.Register(flag.CommandLine)
	var fleetFlags cli.FleetFlags
	fleetFlags.Register(flag.CommandLine)
	var worker cli.WorkerFlags
	worker.Register(flag.CommandLine)
	var (
		specArg = flag.String("spec", "", "read the sweep spec from this fleet spec JSON file ('-' = stdin) instead of the grid flags")
		out     = flag.String("out", "sweep.json", "write the merged SweepResult JSON here ('-' = stdout)")
		dir     = flag.String("dir", "", "working directory for the spec file and shard partials (default: a temp dir, removed unless -keep-partials)")
		keep    = flag.Bool("keep-partials", false, "keep the shard partials and spec file after a successful merge")
		quiet   = flag.Bool("quiet", false, "suppress progress and supervisor lifecycle lines on stderr")
	)
	flag.Parse()

	spec, err := grid.LoadSweep(*specArg, os.Stdin, cli.WorkersSet(flag.CommandLine))
	if err != nil {
		fatal(err)
	}

	workdir := *dir
	ownDir := workdir == ""
	if ownDir {
		if workdir, err = os.MkdirTemp("", "phi-fleet-*"); err != nil {
			fatal(err)
		}
	} else if err := os.MkdirAll(workdir, 0o755); err != nil {
		fatal(err)
	}

	// Job names must be unique per fan-out even when runs share a
	// namespace: the temp workdir's basename is random, but an explicit
	// -dir need not be and pids recycle across machines and containers, so
	// a random suffix is mixed in too (name truncation keeps the tail).
	var salt [3]byte
	rand.Read(salt[:])
	launch, err := k8s.Launcher(fmt.Sprintf("%s-%x", filepath.Base(workdir), salt))
	if err != nil {
		fatal(err)
	}
	if launch == nil {
		launch = worker.Launcher()
	}
	opts, err := fleetFlags.Options(launch, workdir)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		opts.Progress = func(p distrib.Progress) {
			fmt.Fprintf(os.Stderr, "phi-fleet: %d/%d cells done across %d shards\n", p.Done, p.Total, opts.Shards)
		}
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "phi-fleet: "+format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	merged, err := distrib.Run(ctx, spec, opts)
	if err != nil {
		// Keep whatever landed: the partials and spec are the evidence a
		// failed fan-out leaves behind. Always say where they are — with
		// an auto-created temp dir and -quiet the path was never printed.
		fmt.Fprintf(os.Stderr, "phi-fleet: spec and any shard partials kept in %s\n", workdir)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "phi-fleet: %d shards merged into %d injection + %d beam cells in %s\n",
		opts.Shards, len(merged.Cells), len(merged.BeamCells), time.Since(start).Round(time.Millisecond))

	if *out == "-" {
		err = merged.WriteJSON(os.Stdout)
	} else if err = merged.WriteFile(*out); err == nil {
		fmt.Fprintf(os.Stderr, "phi-fleet: wrote merged artifact to %s\n", *out)
	}
	if err != nil {
		// The campaign is done and the partials are valid — if the merged
		// artifact can't land (full disk, bad -out path), the partials are
		// the only copy of hours of compute, so say where they are and
		// leave them for a phi-merge rescue.
		fmt.Fprintf(os.Stderr, "phi-fleet: spec and shard partials kept in %s (refold with phi-merge)\n", workdir)
		fatal(err)
	}

	if *keep {
		fmt.Fprintf(os.Stderr, "phi-fleet: shard partials kept in %s\n", workdir)
	} else if ownDir {
		os.RemoveAll(workdir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-fleet:", err)
	os.Exit(1)
}
