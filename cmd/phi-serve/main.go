// Command phi-serve runs the sweep service: a resident HTTP server that
// accepts canonical sweep specs, schedules them on the distrib fan-out
// scheduler (shared concurrency budget, per-sweep cancellation), streams
// progress over server-sent events, and serves merged artifacts and
// rendered paper figures. Sweep IDs are canonical spec hashes, so the
// artifact cache is content-addressed: a repeated question is answered
// from cache with zero compute, byte-identical to the first answer, and
// identical concurrent submissions coalesce onto one in-flight job.
// Overlapping questions reuse cached prefixes: a sweep whose base-equal
// smaller sibling is cached computes only the missing trial ranges (the
// partial-overlap planner; see internal/serve). -cache-max-bytes bounds
// the cache with LRU eviction, -admission-log records each submission's
// cache outcome, and GET /v1/stats serves the cumulative counters.
//
// Usage:
//
//	phi-serve -addr :8421 -cache-dir serve-cache -shards 4
//	phi-serve -cache-max-bytes 1073741824 -admission-log admissions.jsonl
//	phi-serve -addr :8421 -worker-cmd bin/phi-bench -max-concurrent 8
//	phi-serve -ssh node1,node2 -ssh-bin /opt/phirel/phi-bench
//	phi-serve -k8s -k8s-image ghcr.io/you/phirel:latest
//
//	curl -d @spec.json localhost:8421/v1/sweeps
//	curl localhost:8421/v1/sweeps/<id>
//	curl -N localhost:8421/v1/sweeps/<id>/events
//	curl localhost:8421/v1/sweeps/<id>/result
//	curl "localhost:8421/v1/sweeps/<id>/figures?format=text"
//
// Worker transports and supervision flags mirror cmd/phi-fleet exactly
// (the surfaces are shared through internal/cli), so anything a one-shot
// fan-out can do, the service can serve.
package main

import (
	"context"
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"phirel/internal/cli"
	"phirel/internal/distrib"
	"phirel/internal/serve"
)

func main() {
	var fleetFlags cli.FleetFlags
	fleetFlags.Register(flag.CommandLine)
	var worker cli.WorkerFlags
	worker.Register(flag.CommandLine)
	var k8s cli.K8sFlags
	k8s.Register(flag.CommandLine)
	var (
		addr          = flag.String("addr", ":8421", "listen address")
		cacheDir      = flag.String("cache-dir", "serve-cache", "persistent content-addressed artifact cache directory ('' = in-memory only)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "bound the artifact cache to this many bytes on disk, evicting least-recently-used artifacts (0 = unbounded)")
		admissionLog  = flag.String("admission-log", "", "append one JSON line per submission here: hash, base hash, full/partial/miss outcome, trials from cache vs computed")
		dir           = flag.String("dir", "", "working directory for per-sweep job subdirectories (default: a temp dir, removed on exit)")
		quiet         = flag.Bool("quiet", false, "suppress service and supervisor lifecycle lines on stderr")
	)
	flag.Parse()

	workdir := *dir
	ownDir := workdir == ""
	var err error
	if ownDir {
		if workdir, err = os.MkdirTemp("", "phi-serve-*"); err != nil {
			fatal(err)
		}
	} else if err := os.MkdirAll(workdir, 0o755); err != nil {
		fatal(err)
	}

	// Job names must be unique per service instance even when instances
	// share a k8s namespace (same salting scheme as phi-fleet).
	var salt [3]byte
	rand.Read(salt[:])
	launch, err := k8s.Launcher(fmt.Sprintf("%s-%x", filepath.Base(workdir), salt))
	if err != nil {
		fatal(err)
	}
	if launch == nil {
		launch = worker.Launcher()
	}
	opts, err := fleetFlags.Options(launch, workdir)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "phi-serve: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	opts.Logf = logf

	sched, err := distrib.NewScheduler(opts)
	if err != nil {
		fatal(err)
	}
	var serveOpts []serve.Option
	if *cacheDir != "" {
		serveOpts = append(serveOpts, serve.WithCacheDir(*cacheDir))
	}
	if *cacheMaxBytes > 0 {
		serveOpts = append(serveOpts, serve.WithCacheMaxBytes(*cacheMaxBytes))
	}
	if *admissionLog != "" {
		serveOpts = append(serveOpts, serve.WithAdmissionLog(*admissionLog))
	}
	serveOpts = append(serveOpts, serve.WithLogf(logf))
	srv := serve.New(sched, serveOpts...)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		logf("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shctx)
	}()

	logf("listening on %s (%d shards per sweep, cache %s)", *addr, opts.Shards, cacheLabel(*cacheDir))
	err = hs.ListenAndServe()
	sched.Close()
	if ownDir {
		os.RemoveAll(workdir)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-serve:", err)
	os.Exit(1)
}
