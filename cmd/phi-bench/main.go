// Command phi-bench runs the ported workloads standalone (golden runs) and
// reports their shapes, tick counts, work units and wall times — a quick
// way to inspect the benchmark suite itself.
//
// Usage:
//
//	phi-bench [-bench all] [-seed 1] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"phirel/internal/bench"
	"phirel/internal/bench/all"
	"phirel/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark name or 'all'")
		seed      = flag.Uint64("seed", 1, "workload input seed")
		reps      = flag.Int("reps", 3, "timing repetitions")
	)
	flag.Parse()

	names := all.Suite
	if *benchName != "all" {
		names = []string{*benchName}
	}
	t := report.NewTable("phirel workload suite (golden runs)",
		"Benchmark", "Class", "Output", "Ticks", "Windows", "Work units", "Wall/run")
	for _, name := range names {
		b, err := bench.New(name, *seed)
		if err != nil {
			fatal(err)
		}
		runner, err := bench.NewRunner(b)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *reps; i++ {
			if res := runner.RunGolden(); res.Status != bench.Completed {
				fatal(fmt.Errorf("%s: golden re-run %s", name, res.Status))
			}
		}
		per := time.Since(start) / time.Duration(*reps)
		t.AddRow(name, b.Class().String(),
			runner.Golden.Shape.String(),
			fmt.Sprintf("%d", runner.TotalTicks),
			fmt.Sprintf("%d", b.Windows()),
			fmt.Sprintf("%d", runner.GoldenWork),
			per.Round(time.Microsecond).String(),
		)
	}
	fmt.Println(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-bench:", err)
	os.Exit(1)
}
