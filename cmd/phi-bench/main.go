// Command phi-bench runs the ported workloads standalone (golden runs) and
// reports their shapes, tick counts, work units and wall times — a quick
// way to inspect the benchmark suite itself. With -sweep it instead drives
// the fleet orchestrator: the full benchmarks × fault-models × policy
// injection grid, plus — with -beam-runs — accelerated-beam cells
// (benchmark × device × ECC arm), all on one shared worker pool, with the
// SweepResult optionally exported as a JSON artifact for cmd/phi-report
// and CI.
//
// Usage:
//
//	phi-bench [-bench all] [-seed 1] [-reps 3]
//	phi-bench -sweep [-n 600] [-models Single,Double,Random,Zero]
//	          [-policies by-frame] [-campaign-seed 1701] [-workers 8]
//	          [-beam-runs 6000] [-beam-devices KNC3120A] [-beam-ecc-ablation]
//	          [-shard k/K] [-out sweep.json] [-monitor-jsonl mon.jsonl]
//	phi-bench -spec spec.json [-shard k/K | -plan k/K:injOff+injN:beamOff+beamN]
//	          [-progress-jsonl] [-out -] [-frame-out]
//	          [-checkpoint-out ck.json -checkpoint-every 1000] [-resume-from ck.json]
//
// With -shard k/K (1-based) the sweep runs only the k-th of K deterministic
// slices of every cell's trials; the K partials fold back into the
// monolithic artifact, byte for byte, with cmd/phi-merge. With -plan the
// shard's trial ranges are explicit instead of the balanced split — the
// partial-overlap cache protocol (internal/distrib.FormatPlanArg), where
// fresh workers compute exactly the ranges a cached prefix is missing.
//
// With -spec the whole sweep grid comes from a fleet spec JSON file ("-"
// reads stdin) instead of the grid flags — the shard-worker protocol
// cmd/phi-fleet drives. -progress-jsonl switches stderr progress to
// machine-readable JSONL events (one internal/distrib.Event per line), and
// -out - streams the artifact to stdout (suppressing the per-cell tables),
// so a remote worker needs no filesystem handshake at all. -frame-out wraps
// the stdout artifact in distrib's base64 sentinel frame, which survives
// transports that merge stdout and stderr into one line stream — the
// Kubernetes pod log the phi-fleet -k8s launcher reads partials back from.
//
// -checkpoint-out with -checkpoint-every N makes a shard worker elastic: a
// valid shard-partial artifact covering the contiguous trial prefix
// completed so far lands (atomically) every N trials, and -resume-from
// picks a prior attempt's checkpoint back up, computing only the remaining
// ranges. Both require -shard or -plan — a monolithic run has no shard plan
// to checkpoint — and neither changes the final artifact's bytes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"phirel/internal/bench"
	_ "phirel/internal/bench/all"
	"phirel/internal/cli"
	"phirel/internal/distrib"
	"phirel/internal/fleet"
	"phirel/internal/report"
)

func main() {
	var grid cli.SweepFlags
	grid.Register(flag.CommandLine, "sweep: ")
	var mon cli.MonitorFlags
	mon.Register(flag.CommandLine, "sweep: ")
	var (
		reps = flag.Int("reps", 3, "timing repetitions")

		sweep     = flag.Bool("sweep", false, "run a fleet sweep instead of golden runs")
		shardArg  = flag.String("shard", "", "sweep: run shard k/K of every cell's trials (1-based, e.g. 2/3); merge partials with phi-merge")
		planArg   = flag.String("plan", "", "sweep: run an explicit shard plan k/K:injOff+injN:beamOff+beamN (the partial-overlap protocol; excludes -shard)")
		out       = flag.String("out", "", "sweep: write SweepResult JSON here ('-' = stdout, suppressing tables)")
		specArg   = flag.String("spec", "", "sweep: read the whole sweep spec from this fleet spec JSON file ('-' = stdin) instead of the grid flags; implies -sweep")
		progJSONL = flag.Bool("progress-jsonl", false, "sweep: emit machine-readable JSONL progress events on stderr (the phi-fleet protocol)")
		frameOut  = flag.Bool("frame-out", false, "sweep: with -out -, wrap the artifact in the base64 sentinel frame that survives stream-merging transports (Kubernetes pod logs)")

		ckOut    = flag.String("checkpoint-out", "", "sweep: land a valid shard-partial checkpoint here (tmp+rename) every -checkpoint-every trials; needs -shard or -plan")
		ckEvery  = flag.Int("checkpoint-every", 0, "sweep: checkpoint cadence in trials (0 = no periodic checkpoints)")
		ckResume = flag.String("resume-from", "", "sweep: resume from this checkpoint artifact, computing only the remaining ranges; an unusable checkpoint degrades to the full plan")
	)
	var prof cli.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	if *sweep || *specArg != "" {
		runSweep(sweepOpts{
			grid: &grid, mon: &mon, out: *out,
			shard: *shardArg, plan: *planArg, spec: *specArg, progressJSONL: *progJSONL,
			frameOut: *frameOut,
			ckOut:    *ckOut, ckEvery: *ckEvery, ckResume: *ckResume,
		})
		return
	}

	t := report.NewTable("phirel workload suite (golden runs)",
		"Benchmark", "Class", "Output", "Ticks", "Windows", "Work units", "Wall/run")
	for _, name := range grid.Names() {
		b, err := bench.New(name, grid.Seed)
		if err != nil {
			fatal(err)
		}
		runner, err := bench.NewRunner(b)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *reps; i++ {
			if res := runner.RunGolden(); res.Status != bench.Completed {
				fatal(fmt.Errorf("%s: golden re-run %s", name, res.Status))
			}
		}
		per := time.Since(start) / time.Duration(*reps)
		t.AddRow(name, b.Class().String(),
			runner.Golden.Shape.String(),
			fmt.Sprintf("%d", runner.TotalTicks),
			fmt.Sprintf("%d", b.Windows()),
			fmt.Sprintf("%d", runner.GoldenWork),
			per.Round(time.Microsecond).String(),
		)
	}
	fmt.Println(t)
}

type sweepOpts struct {
	grid          *cli.SweepFlags
	mon           *cli.MonitorFlags
	out           string
	shard         string
	plan          string
	spec          string
	progressJSONL bool
	frameOut      bool
	ckOut         string
	ckEvery       int
	ckResume      string
}

// parseShard parses the 1-based "k/K" shard syntax into a 0-based index
// and a shard count. The round-trip comparison rejects trailing garbage
// ("2/30x", "1/3/9"), which Sscanf alone would silently accept.
func parseShard(s string) (k, count int, err error) {
	if _, serr := fmt.Sscanf(s, "%d/%d", &k, &count); serr != nil || fmt.Sprintf("%d/%d", k, count) != s {
		return 0, 0, fmt.Errorf("bad -shard %q: want k/K, e.g. 2/3", s)
	}
	if count < 1 || k < 1 || k > count {
		return 0, 0, fmt.Errorf("bad -shard %q: k must be in 1..K", s)
	}
	return k - 1, count, nil
}

func runSweep(o sweepOpts) {
	s, err := o.grid.LoadSweep(o.spec, os.Stdin, cli.WorkersSet(flag.CommandLine))
	if err != nil {
		fatal(err)
	}

	// The resident monitor taps the sweep's record streams through the
	// fleet observer hooks — execution detail, so a monitored artifact
	// stays byte-identical to an unmonitored one.
	sink, err := o.mon.Open()
	if err != nil {
		fatal(err)
	}
	if sink != nil {
		s.ObserveInjection = sink.Monitor.ObserveInjection
		s.ObserveBeam = sink.Monitor.ObserveBeam
	}

	if o.shard != "" && o.plan != "" {
		fatal(fmt.Errorf("-shard and -plan are mutually exclusive"))
	}
	k, count := 0, 1
	var plan *fleet.ShardPlan
	if o.shard != "" {
		if k, count, err = parseShard(o.shard); err != nil {
			fatal(err)
		}
	}
	if o.plan != "" {
		p, err := distrib.ParsePlanArg(o.plan)
		if err != nil {
			fatal(err)
		}
		plan, k, count = &p, p.Index, p.Count
	}
	if o.progressJSONL {
		enc := json.NewEncoder(os.Stderr)
		s.Progress = func(done, total int) {
			enc.Encode(distrib.Event{
				Event: distrib.EventName, Shard: k, Count: count, Done: done, Total: total,
			})
		}
	} else {
		s.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "phi-bench: sweep %d/%d cells\n", done, total)
		}
	}

	elastic := o.ckOut != "" || o.ckResume != ""
	if elastic && o.shard == "" && o.plan == "" {
		fatal(fmt.Errorf("-checkpoint-out and -resume-from need -shard or -plan: a monolithic run has no shard plan to checkpoint"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	var res *fleet.SweepResult
	switch {
	case elastic:
		p := fleet.ShardPlan{}
		if plan != nil {
			p = *plan
		} else if p, err = s.Plan(k, count); err != nil {
			fatal(err)
		}
		res, err = s.RunPlanCheckpointed(ctx, p, fleet.Checkpoint{
			Out:    o.ckOut,
			Every:  o.ckEvery,
			Resume: o.ckResume,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "phi-bench: "+format+"\n", args...)
			},
		})
	case plan != nil:
		res, err = s.RunPlan(ctx, *plan)
	case o.shard != "":
		res, err = s.RunShard(ctx, k, count)
	default:
		res, err = s.Run(ctx)
	}
	if err != nil {
		fatal(err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phi-bench: wrote %d monitor snapshots to %s\n",
			sink.Lines(), o.mon.Out)
	}
	label := ""
	if res.Shard != nil {
		label = fmt.Sprintf(" (shard %s)", res.Shard)
	}
	fmt.Fprintf(os.Stderr, "phi-bench: %d injection + %d beam cells%s in %s\n",
		len(res.Cells), len(res.BeamCells), label, time.Since(start).Round(time.Millisecond))

	if o.out != "-" {
		printSweepTables(res)
	}
	switch o.out {
	case "":
	case "-":
		if o.frameOut {
			// A pod log merges stdout and stderr, so a bare artifact could
			// interleave with diagnostics; the sentinel frame keeps it
			// reconstructible from the merged stream (distrib.WriteFramed).
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				fatal(err)
			}
			if err := distrib.WriteFramed(os.Stdout, buf.Bytes()); err != nil {
				fatal(err)
			}
			break
		}
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		if err := res.WriteFile(o.out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phi-bench: wrote sweep result to %s\n", o.out)
	}
}

func printSweepTables(res *fleet.SweepResult) {
	if len(res.Cells) > 0 {
		t := report.NewTable("phirel fleet sweep (per-cell outcomes)",
			"Benchmark", "Model", "Policy", "Masked %", "SDC %", "DUE %", "Fired %", "N")
		for _, c := range res.Cells {
			if c.Result == nil { // empty shard slice of this cell
				continue
			}
			o := c.Result.Outcomes
			t.AddRow(c.Benchmark, c.Model.String(), c.Policy.String(),
				fmt.Sprintf("%.1f", o.MaskedShare().Percent()),
				fmt.Sprintf("%.1f", o.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", o.DUEPVF().Percent()),
				fmt.Sprintf("%.1f", c.Result.FiredShare.Percent()),
				fmt.Sprintf("%d", o.Total()))
		}
		fmt.Println(t)
	}
	if len(res.BeamCells) > 0 {
		t := report.NewTable("phirel fleet sweep (per-beam-cell outcomes)",
			"Benchmark", "Device", "ECC", "SDC FIT", "DUE FIT", "Corrected", "Runs")
		for _, c := range res.BeamCells {
			if c.Result == nil { // empty shard slice of this cell
				continue
			}
			ecc := "on"
			if c.DisableECC {
				ecc = "off"
			}
			t.AddRow(c.Benchmark, c.Device, ecc,
				fmt.Sprintf("%.1f", c.Result.SDCFIT().FIT),
				fmt.Sprintf("%.1f", c.Result.DUEFIT().FIT),
				fmt.Sprintf("%d", c.Result.CorrectedByECC),
				fmt.Sprintf("%d", c.Result.Runs))
		}
		fmt.Println(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-bench:", err)
	os.Exit(1)
}
