// Command phi-bench runs the ported workloads standalone (golden runs) and
// reports their shapes, tick counts, work units and wall times — a quick
// way to inspect the benchmark suite itself. With -sweep it instead drives
// the fleet orchestrator: the full benchmarks × fault-models × policy
// injection grid, plus — with -beam-runs — accelerated-beam cells
// (benchmark × device × ECC arm), all on one shared worker pool, with the
// SweepResult optionally exported as a JSON artifact for cmd/phi-report
// and CI.
//
// Usage:
//
//	phi-bench [-bench all] [-seed 1] [-reps 3]
//	phi-bench -sweep [-n 600] [-models Single,Double,Random,Zero]
//	          [-policies by-frame] [-campaign-seed 1701] [-workers 8]
//	          [-beam-runs 6000] [-beam-devices KNC3120A] [-beam-ecc-ablation]
//	          [-shard k/K] [-out sweep.json]
//
// With -shard k/K (1-based) the sweep runs only the k-th of K deterministic
// slices of every cell's trials; the K partials fold back into the
// monolithic artifact, byte for byte, with cmd/phi-merge.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"phirel/internal/bench"
	"phirel/internal/bench/all"
	"phirel/internal/fault"
	"phirel/internal/fleet"
	"phirel/internal/report"
	"phirel/internal/state"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark name or 'all'")
		seed      = flag.Uint64("seed", 1, "workload input seed")
		reps      = flag.Int("reps", 3, "timing repetitions")

		sweep     = flag.Bool("sweep", false, "run a fleet sweep instead of golden runs")
		n         = flag.Int("n", 600, "sweep: injections per grid cell")
		modelsArg = flag.String("models", "", "sweep: comma-separated fault models (default: all four)")
		policies  = flag.String("policies", "by-frame", "sweep: comma-separated site-selection policies")
		campSeed  = flag.Uint64("campaign-seed", 1701, "sweep: master seed (cell seeds derive from it)")
		workers   = flag.Int("workers", 8, "sweep: shared pool size")
		shardArg  = flag.String("shard", "", "sweep: run shard k/K of every cell's trials (1-based, e.g. 2/3); merge partials with phi-merge")
		out       = flag.String("out", "", "sweep: write SweepResult JSON here (CI artifact)")

		beamRuns    = flag.Int("beam-runs", 0, "sweep: accelerated runs per beam cell (0 = no beam cells)")
		beamDevices = flag.String("beam-devices", "", "sweep: comma-separated phi device keys (default: KNC3120A)")
		beamECC     = flag.Bool("beam-ecc-ablation", false, "sweep: add a SECDED-disabled arm per beam cell (A2)")
	)
	flag.Parse()

	names := all.Suite
	if *benchName != "all" {
		names = []string{*benchName}
	}

	if *sweep {
		runSweep(sweepOpts{
			names: names, n: *n, models: *modelsArg, policies: *policies,
			campSeed: *campSeed, benchSeed: *seed, workers: *workers, out: *out,
			beamRuns: *beamRuns, beamDevices: *beamDevices, beamECC: *beamECC,
			shard: *shardArg,
		})
		return
	}

	t := report.NewTable("phirel workload suite (golden runs)",
		"Benchmark", "Class", "Output", "Ticks", "Windows", "Work units", "Wall/run")
	for _, name := range names {
		b, err := bench.New(name, *seed)
		if err != nil {
			fatal(err)
		}
		runner, err := bench.NewRunner(b)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *reps; i++ {
			if res := runner.RunGolden(); res.Status != bench.Completed {
				fatal(fmt.Errorf("%s: golden re-run %s", name, res.Status))
			}
		}
		per := time.Since(start) / time.Duration(*reps)
		t.AddRow(name, b.Class().String(),
			runner.Golden.Shape.String(),
			fmt.Sprintf("%d", runner.TotalTicks),
			fmt.Sprintf("%d", b.Windows()),
			fmt.Sprintf("%d", runner.GoldenWork),
			per.Round(time.Microsecond).String(),
		)
	}
	fmt.Println(t)
}

type sweepOpts struct {
	names               []string
	n                   int
	models, policies    string
	campSeed, benchSeed uint64
	workers             int
	out                 string
	beamRuns            int
	beamDevices         string
	beamECC             bool
	shard               string
}

// parseShard parses the 1-based "k/K" shard syntax into a 0-based index
// and a shard count. The round-trip comparison rejects trailing garbage
// ("2/30x", "1/3/9"), which Sscanf alone would silently accept.
func parseShard(s string) (k, count int, err error) {
	if _, serr := fmt.Sscanf(s, "%d/%d", &k, &count); serr != nil || fmt.Sprintf("%d/%d", k, count) != s {
		return 0, 0, fmt.Errorf("bad -shard %q: want k/K, e.g. 2/3", s)
	}
	if count < 1 || k < 1 || k > count {
		return 0, 0, fmt.Errorf("bad -shard %q: k must be in 1..K", s)
	}
	return k - 1, count, nil
}

func runSweep(o sweepOpts) {
	models, err := fault.ParseModels(o.models)
	if err != nil {
		fatal(err)
	}
	pols, err := state.ParsePolicies(o.policies)
	if err != nil {
		fatal(err)
	}
	var devices []string
	if o.beamDevices != "" {
		devices = strings.Split(o.beamDevices, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s := fleet.Sweep{
		Benchmarks:      o.names,
		Models:          models,
		Policies:        pols,
		N:               o.n,
		Seed:            o.campSeed,
		BenchSeed:       o.benchSeed,
		Workers:         o.workers,
		BeamRuns:        o.beamRuns,
		BeamDevices:     devices,
		BeamECCAblation: o.beamECC,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "phi-bench: sweep %d/%d cells\n", done, total)
		},
	}
	if o.beamRuns > 0 {
		// The paper's beam suite: every injection benchmark with a
		// calibrated occupancy profile except NW (§3.2).
		s.BeamBenchmarks = all.BeamSuite
	}
	start := time.Now()
	var res *fleet.SweepResult
	var err2 error
	if o.shard != "" {
		k, count, perr := parseShard(o.shard)
		if perr != nil {
			fatal(perr)
		}
		res, err2 = s.RunShard(ctx, k, count)
	} else {
		res, err2 = s.Run(ctx)
	}
	if err2 != nil {
		fatal(err2)
	}
	label := ""
	if res.Shard != nil {
		label = fmt.Sprintf(" (shard %s)", res.Shard)
	}
	fmt.Fprintf(os.Stderr, "phi-bench: %d injection + %d beam cells%s in %s\n",
		len(res.Cells), len(res.BeamCells), label, time.Since(start).Round(time.Millisecond))

	if len(res.Cells) > 0 {
		t := report.NewTable("phirel fleet sweep (per-cell outcomes)",
			"Benchmark", "Model", "Policy", "Masked %", "SDC %", "DUE %", "Fired %", "N")
		for _, c := range res.Cells {
			if c.Result == nil { // empty shard slice of this cell
				continue
			}
			o := c.Result.Outcomes
			t.AddRow(c.Benchmark, c.Model.String(), c.Policy.String(),
				fmt.Sprintf("%.1f", o.MaskedShare().Percent()),
				fmt.Sprintf("%.1f", o.SDCPVF().Percent()),
				fmt.Sprintf("%.1f", o.DUEPVF().Percent()),
				fmt.Sprintf("%.1f", c.Result.FiredShare.Percent()),
				fmt.Sprintf("%d", o.Total()))
		}
		fmt.Println(t)
	}
	if len(res.BeamCells) > 0 {
		t := report.NewTable("phirel fleet sweep (per-beam-cell outcomes)",
			"Benchmark", "Device", "ECC", "SDC FIT", "DUE FIT", "Corrected", "Runs")
		for _, c := range res.BeamCells {
			if c.Result == nil { // empty shard slice of this cell
				continue
			}
			ecc := "on"
			if c.DisableECC {
				ecc = "off"
			}
			t.AddRow(c.Benchmark, c.Device, ecc,
				fmt.Sprintf("%.1f", c.Result.SDCFIT().FIT),
				fmt.Sprintf("%.1f", c.Result.DUEFIT().FIT),
				fmt.Sprintf("%d", c.Result.CorrectedByECC),
				fmt.Sprintf("%d", c.Result.Runs))
		}
		fmt.Println(t)
	}

	if o.out != "" {
		if err := res.WriteFile(o.out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phi-bench: wrote sweep result to %s\n", o.out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-bench:", err)
	os.Exit(1)
}
