// Command phi-bench runs the ported workloads standalone (golden runs) and
// reports their shapes, tick counts, work units and wall times — a quick
// way to inspect the benchmark suite itself. With -sweep it instead drives
// the fleet orchestrator: the full benchmarks × fault-models × policy grid
// on one shared worker pool, with the SweepResult optionally exported as a
// JSON artifact for cmd/phi-report and CI.
//
// Usage:
//
//	phi-bench [-bench all] [-seed 1] [-reps 3]
//	phi-bench -sweep [-n 600] [-models Single,Double,Random,Zero]
//	          [-policies by-frame] [-campaign-seed 1701] [-workers 8]
//	          [-out sweep.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"phirel/internal/bench"
	"phirel/internal/bench/all"
	"phirel/internal/fault"
	"phirel/internal/fleet"
	"phirel/internal/report"
	"phirel/internal/state"
)

func main() {
	var (
		benchName = flag.String("bench", "all", "benchmark name or 'all'")
		seed      = flag.Uint64("seed", 1, "workload input seed")
		reps      = flag.Int("reps", 3, "timing repetitions")

		sweep     = flag.Bool("sweep", false, "run a fleet sweep instead of golden runs")
		n         = flag.Int("n", 600, "sweep: injections per grid cell")
		modelsArg = flag.String("models", "", "sweep: comma-separated fault models (default: all four)")
		policies  = flag.String("policies", "by-frame", "sweep: comma-separated site-selection policies")
		campSeed  = flag.Uint64("campaign-seed", 1701, "sweep: master seed (cell seeds derive from it)")
		workers   = flag.Int("workers", 8, "sweep: shared pool size")
		out       = flag.String("out", "", "sweep: write SweepResult JSON here (CI artifact)")
	)
	flag.Parse()

	names := all.Suite
	if *benchName != "all" {
		names = []string{*benchName}
	}

	if *sweep {
		runSweep(names, *n, *modelsArg, *policies, *campSeed, *seed, *workers, *out)
		return
	}

	t := report.NewTable("phirel workload suite (golden runs)",
		"Benchmark", "Class", "Output", "Ticks", "Windows", "Work units", "Wall/run")
	for _, name := range names {
		b, err := bench.New(name, *seed)
		if err != nil {
			fatal(err)
		}
		runner, err := bench.NewRunner(b)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *reps; i++ {
			if res := runner.RunGolden(); res.Status != bench.Completed {
				fatal(fmt.Errorf("%s: golden re-run %s", name, res.Status))
			}
		}
		per := time.Since(start) / time.Duration(*reps)
		t.AddRow(name, b.Class().String(),
			runner.Golden.Shape.String(),
			fmt.Sprintf("%d", runner.TotalTicks),
			fmt.Sprintf("%d", b.Windows()),
			fmt.Sprintf("%d", runner.GoldenWork),
			per.Round(time.Microsecond).String(),
		)
	}
	fmt.Println(t)
}

func runSweep(names []string, n int, modelsArg, policiesArg string, campSeed, benchSeed uint64, workers int, out string) {
	models, err := fault.ParseModels(modelsArg)
	if err != nil {
		fatal(err)
	}
	pols, err := state.ParsePolicies(policiesArg)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s := fleet.Sweep{
		Benchmarks: names,
		Models:     models,
		Policies:   pols,
		N:          n,
		Seed:       campSeed,
		BenchSeed:  benchSeed,
		Workers:    workers,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "phi-bench: sweep %d/%d cells\n", done, total)
		},
	}
	start := time.Now()
	res, err := s.Run(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "phi-bench: %d cells × %d injections in %s\n",
		len(res.Cells), n, time.Since(start).Round(time.Millisecond))

	t := report.NewTable("phirel fleet sweep (per-cell outcomes)",
		"Benchmark", "Model", "Policy", "Masked %", "SDC %", "DUE %", "Fired %", "N")
	for _, c := range res.Cells {
		o := c.Result.Outcomes
		t.AddRow(c.Benchmark, c.Model.String(), c.Policy.String(),
			fmt.Sprintf("%.1f", o.MaskedShare().Percent()),
			fmt.Sprintf("%.1f", o.SDCPVF().Percent()),
			fmt.Sprintf("%.1f", o.DUEPVF().Percent()),
			fmt.Sprintf("%.1f", c.Result.FiredShare.Percent()),
			fmt.Sprintf("%d", o.Total()))
	}
	fmt.Println(t)

	if out != "" {
		if err := res.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phi-bench: wrote sweep result to %s\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-bench:", err)
	os.Exit(1)
}
