// Command phi-merge folds shard-partial sweep artifacts — written by
// phi-bench -sweep -shard k/K -out — back into one complete SweepResult,
// byte-identical to the artifact a monolithic phi-bench -sweep run with the
// same spec would have written. It validates before folding: every partial
// of the K-way split must be present exactly once and all must carry the
// same grid, seeds and trial counts; anything else (including passing an
// already-merged artifact) is a hard error.
//
// Arguments may be literal paths or glob patterns (quote patterns if you
// want phi-merge rather than your shell to expand them — both work): every
// argument must match at least one file, and a partial reached twice, by
// repetition or overlapping patterns, is rejected up front by path instead
// of surfacing later as a duplicated shard index.
//
// Usage:
//
//	phi-merge -out sweep.json sweep-shard-1-of-3.json sweep-shard-2-of-3.json sweep-shard-3-of-3.json
//	phi-merge -out sweep.json 'sweep-shard-*.json'
package main

import (
	"flag"
	"fmt"
	"os"

	_ "phirel/internal/bench/all"
	"phirel/internal/fleet"
)

func main() {
	out := flag.String("out", "", "write the merged SweepResult JSON here (default: stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no shard files given; usage: phi-merge [-out sweep.json] sweep-shard-*.json"))
	}
	paths, err := fleet.DiscoverPartials(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	merged, err := fleet.MergeFiles(paths...)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := merged.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := merged.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "phi-merge: folded %d shards into %d injection + %d beam cells\n",
		len(paths), len(merged.Cells), len(merged.BeamCells))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phi-merge:", err)
	os.Exit(1)
}
