package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"phirel/internal/fault"
	"phirel/internal/fleet"
)

// TestMain doubles as the phi-merge executable: re-exec'd with
// PHIREL_BE_PHI_MERGE=1, the test binary runs main(), so the error paths —
// exit codes and stderr text included — are exercised exactly as an
// operator hits them, without building the command first.
func TestMain(m *testing.M) {
	if os.Getenv("PHIREL_BE_PHI_MERGE") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runMerge re-execs this binary as phi-merge and returns (exit code, stderr).
func runMerge(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PHIREL_BE_PHI_MERGE=1")
	cmd.Stdout = io.Discard
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec failed before main ran: %v", err)
	}
	return ee.ExitCode(), stderr.String()
}

// testPartials runs a tiny 2-way sharded sweep and writes its partials plus
// the monolithic reference artifact into dir.
func testPartials(t *testing.T, dir string) (parts []string, mono string) {
	t.Helper()
	spec := fleet.Sweep{
		Benchmarks: []string{"DGEMM"},
		Models:     []fault.Model{fault.Single},
		N:          6, Seed: 1701, BenchSeed: 1, Workers: 2,
	}
	for k := 0; k < 2; k++ {
		res, err := spec.RunShard(context.Background(), k, 2)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("sweep-shard-%d-of-2.json", k+1))
		if err := res.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, path)
	}
	res, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mono = filepath.Join(dir, "sweep.json")
	if err := res.WriteFile(mono); err != nil {
		t.Fatal(err)
	}
	return parts, mono
}

// expectFailure asserts a non-zero exit whose stderr carries the needle —
// the operator-facing contract for every error path.
func expectFailure(t *testing.T, needle string, args ...string) {
	t.Helper()
	code, stderr := runMerge(t, args...)
	if code == 0 {
		t.Fatalf("phi-merge %v exited 0, want failure", args)
	}
	if !strings.Contains(stderr, needle) {
		t.Fatalf("phi-merge %v stderr misses %q:\n%s", args, needle, stderr)
	}
}

func TestMergeNoArgs(t *testing.T) {
	expectFailure(t, "no shard files given")
}

func TestMergeMissingFile(t *testing.T) {
	expectFailure(t, "no partial artifacts match", filepath.Join(t.TempDir(), "nope.json"))
}

func TestMergeDuplicatePartialPath(t *testing.T) {
	parts, _ := testPartials(t, t.TempDir())
	expectFailure(t, "twice", parts[0], parts[0], parts[1])
}

func TestMergeDuplicateShardCopy(t *testing.T) {
	dir := t.TempDir()
	parts, _ := testPartials(t, dir)
	// A copied partial under a fresh name dodges the path dedup; the merge
	// layer must still reject the repeated shard index.
	data, err := os.ReadFile(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	copyPath := filepath.Join(dir, "copied-partial.json")
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	expectFailure(t, "more than once", parts[0], parts[1], copyPath)
}

func TestMergeRejectsCompleteArtifact(t *testing.T) {
	parts, mono := testPartials(t, t.TempDir())
	expectFailure(t, "not a shard partial", parts[0], parts[1], mono)
}

func TestMergeMissingShard(t *testing.T) {
	parts, _ := testPartials(t, t.TempDir())
	expectFailure(t, "want 2", parts[0])
}

func TestMergeTruncatedPartial(t *testing.T) {
	dir := t.TempDir()
	parts, _ := testPartials(t, dir)
	bad := filepath.Join(dir, "truncated-partial.json")
	if err := os.WriteFile(bad, []byte(`{"spec": {"n"`), 0o644); err != nil {
		t.Fatal(err)
	}
	expectFailure(t, "truncated", parts[0], bad)
}

// TestMergeHappyPathBytes keeps the harness honest: the success path must
// exit 0 and write the byte-identical monolithic artifact.
func TestMergeHappyPathBytes(t *testing.T) {
	dir := t.TempDir()
	parts, mono := testPartials(t, dir)
	out := filepath.Join(dir, "merged.json")
	code, stderr := runMerge(t, append([]string{"-out", out}, parts...)...)
	if code != 0 {
		t.Fatalf("merge exited %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "folded 2 shards") {
		t.Fatalf("success summary missing:\n%s", stderr)
	}
	want, err := os.ReadFile(mono)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("CLI merge not byte-identical to the monolithic artifact")
	}
}
